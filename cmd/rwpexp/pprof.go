package main

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"

	// Register the /debug/pprof handlers on the default mux.
	_ "net/http/pprof"
)

// Profiling is strictly a cmd/-layer concern: the simulator stays free
// of clocks and I/O, and rwpexp wraps it with the standard Go tooling —
// a live net/http/pprof endpoint for poking at a long full-scale run,
// plus one-shot CPU/heap dumps for `go tool pprof`.

// startPprofServer serves the default mux (with /debug/pprof) on addr
// in the background. Serving failures are reported, not fatal — the
// experiments still run.
func startPprofServer(addr string) {
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "rwpexp: pprof server: %v\n", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "rwpexp: pprof listening on http://%s/debug/pprof/\n", addr)
}

// startCPUProfile begins writing a CPU profile to path and returns the
// stop function.
func startCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeHeapProfile dumps a heap profile to path (after a GC, so the
// profile reflects live objects, not garbage).
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	return nil
}
