package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rwp/internal/runner"
)

// fixedClock is a hand-advanced clock for deterministic progress tests.
type fixedClock struct{ t time.Time }

func (c *fixedClock) now() time.Time          { return c.t }
func (c *fixedClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestProgressLinesWithFixedClock(t *testing.T) {
	var buf bytes.Buffer
	clk := &fixedClock{t: time.Date(2024, 1, 2, 3, 4, 5, 0, time.UTC)}
	p := startProgressAt(&buf, "E3", "Speedup over LRU", clk.now)
	clk.advance(1500 * time.Millisecond)
	p.done("E3")
	got := buf.String()
	want := "--- E3: Speedup over LRU ---\n(E3 in 1.5s)\n"
	if got != want {
		t.Fatalf("progress output:\n got %q\nwant %q", got, want)
	}
}

func TestEtaLine(t *testing.T) {
	if got := etaLine(0, 5, 0); got != "" {
		t.Errorf("eta before anything finished = %q, want empty", got)
	}
	if got := etaLine(5, 5, time.Minute); got != "" {
		t.Errorf("eta with nothing left = %q, want empty", got)
	}
	got := etaLine(2, 6, 1*time.Minute)
	want := "(2/6 experiments, ~2m0s remaining)"
	if got != want {
		t.Errorf("eta = %q, want %q", got, want)
	}
}

func TestEngineLineFormat(t *testing.T) {
	st := runner.Stats{
		Submitted: 10, Coalesced: 3, Executed: 5, Done: 7,
		DiskHits: 2, DiskPuts: 5, DiskErrors: 0,
		ExecTime: 2300 * time.Millisecond, MaxQueue: 4,
	}
	got := engineLine(8, st)
	want := "rwpexp: engine: workers=8 submitted=10 coalesced=3 executed=5 done=7 disk-hits=2 disk-puts=5 disk-errors=0 max-queue=4 exec-time=2.3s"
	if got != want {
		t.Fatalf("engine line:\n got %q\nwant %q", got, want)
	}
	// The "executed=N " token (trailing space included) is what
	// scripts/check.sh greps on warm-cache runs; a format change here
	// must update check.sh in the same commit.
	if !strings.Contains(engineLine(1, runner.Stats{}), " executed=0 ") {
		t.Fatal("engine line lost the ' executed=N ' token check.sh relies on")
	}
}

func TestJobLines(t *testing.T) {
	k, err := runner.NewKey("single", "mcf/rwp", struct{ X int }{1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := jobStartLine(k), "  run   single mcf/rwp"; got != want {
		t.Errorf("start line %q, want %q", got, want)
	}
	if got, want := jobDoneLine(k, 1234*time.Millisecond, false), "  done  single mcf/rwp (computed, 1.234s)"; got != want {
		t.Errorf("done line %q, want %q", got, want)
	}
	if got, want := jobDoneLine(k, 10*time.Millisecond, true), "  done  single mcf/rwp (cache hit, 10ms)"; got != want {
		t.Errorf("cache-hit line %q, want %q", got, want)
	}
}
