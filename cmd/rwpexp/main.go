// Command rwpexp regenerates the paper's tables and figures (E1..E11)
// and the design-choice ablations (A1..A4). Run with -exp to select one
// experiment or without flags for the full suite; -list prints the
// experiment index; -scale quick|full trades fidelity for time; -csv
// writes each table as CSV into a directory alongside the rendered
// text.
//
// Execution goes through internal/runner's parallel engine: -j bounds
// the worker pool (default GOMAXPROCS) and -cache-dir enables the
// persistent result cache, so a killed run resumes with only missing
// simulations re-executed. Tables are written to stdout and are
// byte-identical at any -j and across warm-cache resumes; progress,
// timing, and the engine summary go to stderr.
//
// Observability: -metrics-dir makes every simulation job write a
// canonical JSONL run journal (internal/probe) next to nothing else —
// one file per job, content-addressed like the result cache; load them
// with cmd/rwpstat. -pprof serves net/http/pprof; -cpuprofile and
// -memprofile write one-shot dumps for `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rwp/internal/exps"
	"rwp/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rwpexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "", "experiment id (E1..E11, A1..A4); empty = all")
	list := fs.Bool("list", false, "print experiment ids and titles, then exit")
	scale := fs.String("scale", "full", "quick|full")
	csvDir := fs.String("csv", "", "directory to write per-experiment CSVs into")
	benches := fs.String("benches", "", "comma-separated benchmark subset (default: full suite)")
	jobs := fs.Int("j", 0, "max concurrently executing simulations (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "persistent result cache directory (empty = no cache)")
	metricsDir := fs.String("metrics-dir", "", "directory for per-job run journals (empty = no journals)")
	probeWindow := fs.Uint64("probe-window", 0, "journal interval width in measured accesses (0 = default)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	verbose := fs.Bool("v", false, "print per-job progress lines to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range exps.Registry() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var sc exps.Scale
	switch *scale {
	case "quick":
		sc = exps.Quick
	case "full":
		sc = exps.Full
	default:
		fmt.Fprintf(stderr, "rwpexp: unknown scale %q\n", *scale)
		return 2
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "rwpexp: %v\n", err)
			return 1
		}
	}

	if *pprofAddr != "" {
		startPprofServer(*pprofAddr)
	}
	if *cpuProfile != "" {
		stop, err := startCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "rwpexp: %v\n", err)
			return 1
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				fmt.Fprintf(stderr, "rwpexp: %v\n", err)
			}
		}()
	}

	eng, err := runner.New(runner.Config{
		Workers:     *jobs,
		CacheDir:    *cacheDir,
		MetricsDir:  *metricsDir,
		ProbeWindow: *probeWindow,
		Clock:       wallClock{},
		Observer:    &jobObserver{w: stderr, verbose: *verbose},
	})
	if err != nil {
		fmt.Fprintf(stderr, "rwpexp: %v\n", err)
		return 1
	}
	suite := exps.NewSuiteEngine(sc, eng)
	if *benches != "" {
		suite.Benches = strings.Split(*benches, ",")
	}

	var selected []exps.Experiment
	for _, e := range exps.Registry() {
		if *exp != "" && !strings.EqualFold(e.ID, *exp) {
			continue
		}
		selected = append(selected, e)
	}
	if len(selected) == 0 {
		fmt.Fprintf(stderr, "rwpexp: unknown experiment %q\n", *exp)
		return 2
	}
	if err := runExperiments(selected, suite, *csvDir, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "rwpexp: %v\n", err)
		return 1
	}
	fmt.Fprintln(stderr, engineLine(eng.Workers(), eng.Stats()))
	return 0
}

// runExperiments renders each selected experiment in registry order,
// with an ETA line between experiments once one has finished.
func runExperiments(selected []exps.Experiment, suite *exps.Suite, csvDir string, stdout, stderr io.Writer) error {
	suiteStart := time.Now()
	for i, e := range selected {
		if line := etaLine(i, len(selected), time.Since(suiteStart)); line != "" {
			fmt.Fprintln(stderr, line)
		}
		prog := startProgress(stderr, e.ID, e.Title)
		t, err := e.Run(suite)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := t.Render(stdout); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if csvDir != "" {
			path := filepath.Join(csvDir, strings.ToLower(e.ID)+".csv")
			f, err := os.Create(path)
			if err == nil {
				err = t.RenderCSV(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
		}
		prog.done(e.ID)
	}
	return nil
}
