// Command rwpexp regenerates the paper's tables and figures (E1..E11)
// and the design-choice ablations (A1..A4). Run with -exp to select one
// experiment or without flags for the full suite; -list prints the
// experiment index; -scale quick|full trades fidelity for time; -csv
// writes each table as CSV into a directory alongside the rendered
// text.
//
// Execution goes through internal/runner's parallel engine: -j bounds
// the worker pool (default GOMAXPROCS) and -cache-dir enables the
// persistent result cache, so a killed run resumes with only missing
// simulations re-executed. Tables are written to stdout and are
// byte-identical at any -j and across warm-cache resumes; progress,
// timing, and the engine summary go to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rwp/internal/exps"
	"rwp/internal/runner"
)

func main() {
	exp := flag.String("exp", "", "experiment id (E1..E11, A1..A4); empty = all")
	list := flag.Bool("list", false, "print experiment ids and titles, then exit")
	scale := flag.String("scale", "full", "quick|full")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSVs into")
	benches := flag.String("benches", "", "comma-separated benchmark subset (default: full suite)")
	jobs := flag.Int("j", 0, "max concurrently executing simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "persistent result cache directory (empty = no cache)")
	verbose := flag.Bool("v", false, "print per-job progress lines to stderr")
	flag.Parse()

	if *list {
		for _, e := range exps.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var sc exps.Scale
	switch *scale {
	case "quick":
		sc = exps.Quick
	case "full":
		sc = exps.Full
	default:
		fmt.Fprintf(os.Stderr, "rwpexp: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rwpexp: %v\n", err)
			os.Exit(1)
		}
	}
	eng, err := runner.New(runner.Config{
		Workers:  *jobs,
		CacheDir: *cacheDir,
		Clock:    wallClock{},
		Observer: &jobObserver{w: os.Stderr, verbose: *verbose},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwpexp: %v\n", err)
		os.Exit(1)
	}
	suite := exps.NewSuiteEngine(sc, eng)
	if *benches != "" {
		suite.Benches = strings.Split(*benches, ",")
	}
	ran := false
	for _, e := range exps.Registry() {
		if *exp != "" && !strings.EqualFold(e.ID, *exp) {
			continue
		}
		ran = true
		prog := startProgress(os.Stderr, e.ID, e.Title)
		t, err := e.Run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rwpexp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rwpexp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			f, err := os.Create(path)
			if err == nil {
				err = t.RenderCSV(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "rwpexp: writing %s: %v\n", path, err)
				os.Exit(1)
			}
		}
		prog.done(e.ID)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "rwpexp: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "rwpexp: engine: workers=%d submitted=%d coalesced=%d executed=%d disk-hits=%d disk-puts=%d disk-errors=%d\n",
		eng.Workers(), st.Submitted, st.Coalesced, st.Executed, st.DiskHits, st.DiskPuts, st.DiskErrors)
}
