package main

import (
	"fmt"
	"io"
	"time"
)

// progress is the experiment driver's wall-clock progress reporter.
// It is the only place in the repo (outside tests' harness) that may
// read the host clock: the simulator under internal/ runs purely on
// simulated cycle counters, and the rwplint nowallclock rule keeps it
// that way. Anything new that needs wall-clock timing belongs behind a
// helper like this one, under cmd/.
type progress struct {
	w     io.Writer
	start time.Time
}

// startProgress announces an experiment and starts its stopwatch.
func startProgress(w io.Writer, id, title string) *progress {
	fmt.Fprintf(w, "--- %s: %s ---\n", id, title)
	return &progress{w: w, start: time.Now()}
}

// done reports the experiment's wall-clock duration, rounded for
// humans (results never include wall time; it is presentation only).
func (p *progress) done(id string) {
	fmt.Fprintf(p.w, "(%s in %v)\n\n", id, time.Since(p.start).Round(time.Millisecond))
}
