package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"rwp/internal/runner"
)

// progress is the experiment driver's wall-clock progress reporter.
// It is the only place in the repo (outside tests' harness) that may
// read the host clock: the simulator under internal/ runs purely on
// simulated cycle counters, and the rwplint nowallclock rule keeps it
// that way. Anything new that needs wall-clock timing belongs behind a
// helper like this one, under cmd/ — internal/runner observes per-job
// timing only through its injected Clock interface, implemented here.
//
// Progress goes to stderr: stdout carries only the rendered tables, so
// it is byte-identical across -j values, repeated runs, and warm-cache
// resumes (timing lines would break that).
type progress struct {
	w     io.Writer
	start time.Time
}

// startProgress announces an experiment and starts its stopwatch.
func startProgress(w io.Writer, id, title string) *progress {
	fmt.Fprintf(w, "--- %s: %s ---\n", id, title)
	return &progress{w: w, start: time.Now()}
}

// done reports the experiment's wall-clock duration, rounded for
// humans (results never include wall time; it is presentation only).
func (p *progress) done(id string) {
	fmt.Fprintf(p.w, "(%s in %v)\n", id, time.Since(p.start).Round(time.Millisecond))
}

// wallClock implements runner.Clock with the host clock. Job timing is
// observability only — results never depend on it.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// jobObserver prints per-job progress lines (enabled by -v). The
// engine calls it from worker goroutines, so writes are serialized.
type jobObserver struct {
	mu      sync.Mutex
	w       io.Writer
	verbose bool
}

func (o *jobObserver) JobStart(k runner.Key) {
	if !o.verbose {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	fmt.Fprintf(o.w, "  run   %s\n", k)
}

func (o *jobObserver) JobDone(k runner.Key, d time.Duration, fromCache bool) {
	if !o.verbose {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	src := "computed"
	if fromCache {
		src = "cache hit"
	}
	fmt.Fprintf(o.w, "  done  %s (%s, %v)\n", k, src, d.Round(time.Millisecond))
}
