package main

import (
	"fmt"
	"io"
	"sync"
	"time"

	"rwp/internal/runner"
)

// progress is the experiment driver's wall-clock progress reporter.
// It is the only place in the repo (outside tests' harness) that may
// read the host clock: the simulator under internal/ runs purely on
// simulated cycle counters, and the rwplint nowallclock rule keeps it
// that way. Anything new that needs wall-clock timing belongs behind a
// helper like this one, under cmd/ — internal/runner observes per-job
// timing only through its injected Clock interface, implemented here.
//
// Progress goes to stderr: stdout carries only the rendered tables, so
// it is byte-identical across -j values, repeated runs, and warm-cache
// resumes (timing lines would break that).
//
// All line rendering lives in pure functions of (inputs, durations) so
// progress_test.go can pin the format with a fixed clock; only the thin
// wrappers below read time.Now.

// headerLine announces an experiment.
func headerLine(id, title string) string {
	return fmt.Sprintf("--- %s: %s ---", id, title)
}

// doneLine reports an experiment's wall-clock duration, rounded for
// humans (results never include wall time; it is presentation only).
func doneLine(id string, elapsed time.Duration) string {
	return fmt.Sprintf("(%s in %v)", id, elapsed.Round(time.Millisecond))
}

// etaLine estimates the time remaining after done of total experiments
// finished in elapsed, assuming uniform per-experiment cost. It returns
// "" when no estimate is possible (nothing finished yet) or useful
// (nothing left).
func etaLine(done, total int, elapsed time.Duration) string {
	if done <= 0 || done >= total {
		return ""
	}
	per := elapsed / time.Duration(done)
	rem := per * time.Duration(total-done)
	return fmt.Sprintf("(%d/%d experiments, ~%v remaining)", done, total, rem.Round(time.Second))
}

// engineLine renders the end-of-run engine summary. The "executed=N "
// token is load-bearing: scripts/check.sh greps it to verify warm-cache
// runs execute nothing.
func engineLine(workers int, st runner.Stats) string {
	return fmt.Sprintf("rwpexp: engine: workers=%d submitted=%d coalesced=%d executed=%d done=%d disk-hits=%d disk-puts=%d disk-errors=%d max-queue=%d exec-time=%v",
		workers, st.Submitted, st.Coalesced, st.Executed, st.Done,
		st.DiskHits, st.DiskPuts, st.DiskErrors, st.MaxQueue,
		st.ExecTime.Round(time.Millisecond))
}

// jobStartLine renders one -v job-start line.
func jobStartLine(k runner.Key) string {
	return "  run   " + k.String()
}

// jobDoneLine renders one -v job-completion line.
func jobDoneLine(k runner.Key, d time.Duration, fromCache bool) string {
	src := "computed"
	if fromCache {
		src = "cache hit"
	}
	return fmt.Sprintf("  done  %s (%s, %v)", k, src, d.Round(time.Millisecond))
}

// progress tracks one experiment's stopwatch. The clock is injected so
// tests can drive it deterministically.
type progress struct {
	w     io.Writer
	now   func() time.Time
	start time.Time
}

// startProgress announces an experiment and starts its stopwatch on the
// host clock.
func startProgress(w io.Writer, id, title string) *progress {
	return startProgressAt(w, id, title, time.Now)
}

// startProgressAt is startProgress with an injected clock.
func startProgressAt(w io.Writer, id, title string, now func() time.Time) *progress {
	fmt.Fprintln(w, headerLine(id, title))
	return &progress{w: w, now: now, start: now()}
}

// done reports the experiment's duration.
func (p *progress) done(id string) {
	fmt.Fprintln(p.w, doneLine(id, p.now().Sub(p.start)))
}

// wallClock implements runner.Clock with the host clock. Job timing is
// observability only — results never depend on it.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// jobObserver prints per-job progress lines (enabled by -v). The
// engine calls it from worker goroutines, so writes are serialized.
type jobObserver struct {
	mu      sync.Mutex
	w       io.Writer
	verbose bool
}

func (o *jobObserver) JobStart(k runner.Key) {
	if !o.verbose {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	// Writing under o.mu is the point: the mutex exists only to keep
	// concurrent workers' progress lines from interleaving on stderr.
	//rwplint:allow lockheld — the lock's sole job is serializing this stream write
	fmt.Fprintln(o.w, jobStartLine(k))
}

func (o *jobObserver) JobDone(k runner.Key, d time.Duration, fromCache bool) {
	if !o.verbose {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	// See JobStart: the mutex exists to serialize this stream write.
	//rwplint:allow lockheld — the lock's sole job is serializing this stream write
	fmt.Fprintln(o.w, jobDoneLine(k, d, fromCache))
}
