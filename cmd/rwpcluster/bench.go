package main

import (
	"fmt"
	"io"
	"time"

	"rwp/internal/cluster"
	"rwp/internal/live"
	"rwp/internal/live/loadgen"
	"rwp/internal/probe"
	"rwp/internal/report"
)

// benchWindow is the bench's load-sampling window in routed ops; all
// three legs share it so their makespans are comparable.
const benchWindow = 4096

// benchHotKeys is the size of the bench's hot population. All hot
// keys are picked to land on ONE ring shard (the hot-shard scenario):
// per-key rendezvous routing cannot spread a single key's reads, but a
// replicated shard spreads distinct hot keys across its replicas.
const benchHotKeys = 8

// runClusterBench runs the partition-vs-replicate experiment the
// cluster layer exists for, on a deliberately skewed hotspot stream:
//
//	single   one node absorbs everything (the rwpserve baseline)
//	static   three nodes, ring only — the hot shard stays on one node
//	managed  three nodes plus the shard manager replicating hot shards
//
// The gated metrics are deterministic models, not wall clock: modeled
// read throughput is totalReads/makespan where makespan sums each
// window's busiest-node load (replicating the hot shard shrinks the
// busiest node's share), and late-p99 is the worst per-window p99
// service cost (in-window queue depth) over the run's second half —
// after the control loop has had windows to act; the first windows are
// identical across legs by construction. Wall times are printed for
// orientation but never gated — the host is shared and noisy; the
// model is the contract.
func runClusterBench(w io.Writer, cacheCfg live.Config, ringShards, vnodes, ops, valueSize int, seed uint64) error {
	hotNames, err := hotShardKeys(cacheCfg.Sets, ringShards, vnodes)
	if err != nil {
		return err
	}
	stream, err := loadgen.NewHotspot(loadgen.HotspotConfig{
		HotNames: hotNames, ColdKeys: 65536,
		HotFrac: 0.9, WriteFrac: 0.1, ZipfS: 1.2,
		ValueSize: valueSize, Seed: seed,
	})
	if err != nil {
		return err
	}
	opsList := stream.Ops(ops)

	type leg struct {
		name    string
		nodes   int
		managed bool
	}
	legs := []leg{
		{"single", 1, false},
		{"static", 3, false},
		{"managed", 3, true},
	}
	type result struct {
		leg
		reads    uint64
		makespan uint64
		model    float64
		peakP99  int
		cmds     int
		wallMS   int64
	}
	var results []result
	for _, l := range legs {
		var mgr *cluster.Manager
		if l.managed {
			m, err := cluster.NewManager(cluster.ManagerConfig{
				Window: benchWindow, HotReads: 1024, ColdReads: 64,
			})
			if err != nil {
				return err
			}
			mgr = m
		}
		ids := make([]string, l.nodes)
		for i := range ids {
			ids[i] = fmt.Sprintf("node%d", i)
		}
		h, err := cluster.NewHarness(cluster.HarnessConfig{
			NodeIDs:    ids,
			RingShards: ringShards,
			Vnodes:     vnodes,
			Cache:      cacheCfg,
			Manager:    mgr,
			Window:     benchWindow,
		})
		if err != nil {
			return err
		}
		start := time.Now()
		if err := h.Client().Replay(opsList); err != nil {
			return err
		}
		if err := h.Client().Finish(); err != nil {
			return err
		}
		wall := time.Since(start)
		peak := lateP99(h.Client().Windows())
		r := result{
			leg:      l,
			reads:    h.Client().TotalReads(),
			makespan: h.Client().Makespan(),
			peakP99:  peak,
			cmds:     len(h.Client().AppliedCommands()),
			wallMS:   wall.Milliseconds(),
		}
		if r.makespan > 0 {
			r.model = float64(r.reads) / float64(r.makespan)
		}
		results = append(results, r)
		if err := h.Close(); err != nil {
			return err
		}
	}

	t := report.New(fmt.Sprintf("cluster bench: %d hotspot ops, window %d, ring-shards %d", ops, benchWindow, ringShards),
		"leg", "nodes", "manager", "reads", "makespan", "model-xput", "late-p99", "repl-cmds", "wall-ms")
	for _, r := range results {
		mgrCell := "off"
		if r.managed {
			mgrCell = "on"
		}
		t.AddRow(r.name, report.I(r.nodes), mgrCell,
			report.I(r.reads), report.I(r.makespan), report.F(r.model, 3),
			report.I(r.peakP99), report.I(r.cmds), report.I(r.wallMS))
	}
	t.Note = "model-xput = reads per busiest-node load unit (deterministic); wall-ms is unmodeled and ungated"
	if err := t.Render(w); err != nil {
		return err
	}
	static, managed := results[1], results[2]
	fmt.Fprintf(w, "\ngate: model static=%.3f managed=%.3f late-p99 static=%d managed=%d\n",
		static.model, managed.model, static.peakP99, managed.peakP99)
	return nil
}

// hotShardKeys scans candidate key names until benchHotKeys of them
// land on one ring shard (the shard of candidate 0). Shard placement
// depends only on the geometry, never on the node set, so all three
// legs see the same hot shard.
func hotShardKeys(sets, ringShards, vnodes int) ([]string, error) {
	probe, err := cluster.New(sets, ringShards, []string{"probe"}, vnodes)
	if err != nil {
		return nil, err
	}
	target := probe.KeyShard(loadgen.HotKey(0))
	names := make([]string, 0, benchHotKeys)
	for i := 0; len(names) < benchHotKeys; i++ {
		if name := loadgen.HotKey(i); probe.KeyShard(name) == target {
			names = append(names, name)
		}
	}
	return names, nil
}

// lateP99 is the worst per-window p99 service cost over the run's
// second half of windows (control-loop steady state).
func lateP99(ws []probe.ShardWindow) int {
	last := 0
	for _, w := range ws {
		if w.Window > last {
			last = w.Window
		}
	}
	peak := 0
	for _, w := range ws {
		if 2*w.Window >= last && w.P99Cost > peak {
			peak = w.P99Cost
		}
	}
	return peak
}
