package main

import (
	"fmt"
	"io"

	"rwp/internal/cluster"
	"rwp/internal/live"
	"rwp/internal/live/loadgen"
	"rwp/internal/report"
)

// runCatchupBench measures what warm replica catch-up buys: the same
// managed hotspot run twice, once with snapshot catch-up wired and
// once forced onto the cold-reset path (HarnessConfig.NoCatchup).
//
// The comparison is rigorous, not merely suggestive: replica decisions
// are routing-side functions of the op stream alone, so both legs
// apply the identical command sequence and serve the identical reads —
// the only difference is how a just-added replica acquires its range
// (one bulk snapshot transfer vs a Loader refill per resident key).
// Summed backend Loads isolate exactly that refill cost; the gate
// demands warm < cold strictly.
func runCatchupBench(w io.Writer, cacheCfg live.Config, mode cluster.Mode, ringShards, vnodes, ops, valueSize int, seed uint64) error {
	hotNames, err := hotShardKeys(cacheCfg.Sets, ringShards, vnodes)
	if err != nil {
		return err
	}
	stream, err := loadgen.NewHotspot(loadgen.HotspotConfig{
		HotNames: hotNames, ColdKeys: 65536,
		HotFrac: 0.9, WriteFrac: 0.1, ZipfS: 1.2,
		ValueSize: valueSize, Seed: seed,
	})
	if err != nil {
		return err
	}
	opsList := stream.Ops(ops)

	type legResult struct {
		name          string
		loads         uint64
		snaps, resets int
		cmds          int
	}
	runLeg := func(name string, noCatchup bool) (legResult, error) {
		mgr, err := cluster.NewManager(cluster.ManagerConfig{
			Window: benchWindow, HotReads: 1024, ColdReads: 64,
		})
		if err != nil {
			return legResult{}, err
		}
		h, err := cluster.NewHarness(cluster.HarnessConfig{
			NodeIDs:    []string{"node0", "node1", "node2"},
			RingShards: ringShards,
			Vnodes:     vnodes,
			Cache:      cacheCfg,
			Mode:       mode,
			Manager:    mgr,
			NoCatchup:  noCatchup,
		})
		if err != nil {
			return legResult{}, err
		}
		if err := h.Client().Replay(opsList); err != nil {
			return legResult{}, err
		}
		if err := h.Client().Finish(); err != nil {
			return legResult{}, err
		}
		r := legResult{name: name, cmds: len(h.Client().AppliedCommands())}
		r.snaps, r.resets = h.Client().CatchupCounts()
		for _, c := range h.Caches() {
			r.loads += c.Stats().Loads
		}
		if err := h.Close(); err != nil {
			return legResult{}, err
		}
		return r, nil
	}

	warm, err := runLeg("warm", false)
	if err != nil {
		return err
	}
	cold, err := runLeg("cold", true)
	if err != nil {
		return err
	}

	t := report.New(fmt.Sprintf("catchup bench: %d hotspot ops, window %d, ring-shards %d, mode %s",
		ops, benchWindow, ringShards, mode),
		"leg", "backend-loads", "snaps", "resets", "repl-cmds")
	for _, r := range []legResult{warm, cold} {
		t.AddRow(r.name, report.I(r.loads), report.I(r.snaps), report.I(r.resets), report.I(r.cmds))
	}
	t.Note = "backend-loads = summed node Loader fills; both legs apply identical replica commands"
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\ngate: backend-loads warm=%d cold=%d warm-snaps=%d cold-resets=%d cmds warm=%d cold=%d\n",
		warm.loads, cold.loads, warm.snaps, cold.resets, warm.cmds, cold.cmds)
	if warm.cmds != cold.cmds {
		return fmt.Errorf("legs diverged: %d vs %d replica commands (decisions must be routing-side)", warm.cmds, cold.cmds)
	}
	if warm.snaps == 0 {
		return fmt.Errorf("warm leg performed no snapshot catch-ups; bench exercised nothing")
	}
	if warm.loads >= cold.loads {
		return fmt.Errorf("warm catch-up did not cut backend loads: warm=%d cold=%d", warm.loads, cold.loads)
	}
	return nil
}
