package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
	"rwp/internal/live/proto"
	"rwp/internal/probe"
)

// clusterOut runs the real flag surface and returns stdout, failing the
// test on a nonzero exit.
func clusterOut(t *testing.T, args ...string) string {
	t.Helper()
	var out, errbuf bytes.Buffer
	if code := run(args, &out, &errbuf); code != 0 {
		t.Fatalf("run(%v) = %d, stderr: %s", args, code, errbuf.String())
	}
	return out.String()
}

// baseArgs is the shared selftest geometry: small enough to be quick,
// large enough that the RWP policy retargets.
func baseArgs(extra ...string) []string {
	args := []string{"-selftest", "8000", "-sets", "256", "-ways", "4",
		"-shards", "4", "-interval", "64", "-profile", "mcf", "-ring-shards", "16"}
	return append(args, extra...)
}

// TestSelftestDeterministic pins the cluster acceptance criterion: the
// merged stats JSON is byte-identical across reruns, transports, ring
// shard counts, and node counts — the ring only moves whole set ranges
// between nodes, it never changes what any set observes.
func TestSelftestDeterministic(t *testing.T) {
	base := clusterOut(t, baseArgs()...)
	if !strings.Contains(base, "\"Retargets\"") || strings.Contains(base, "\"Retargets\": 0,") {
		t.Fatalf("selftest output shows no retargets:\n%s", base)
	}
	for _, extra := range [][]string{
		{},
		{"-mode", "pipe"},
		{"-mode", "pipe", "-pipeline", "7"},
		{"-ring-shards", "64"},
		{"-nodes", "1"},
		{"-nodes", "5", "-mode", "pipe"},
	} {
		if got := clusterOut(t, baseArgs(extra...)...); got != base {
			t.Errorf("selftest output differs for %v:\n%s\nvs base:\n%s", extra, got, base)
		}
	}
}

// TestSelftestMatchesSingleNode replays the same seeded stream against
// one local cache and demands the 3-node merged document equal it byte
// for byte — the cluster is a partitioning of the single-node run, not
// an approximation of it.
func TestSelftestMatchesSingleNode(t *testing.T) {
	got := clusterOut(t, baseArgs()...)

	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = 256, 4, 4
	cfg.RWP.Interval = 64
	cfg.Record = true
	cfg.Loader = loadgen.Loader(0)
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := loadgen.New("mcf", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	loadgen.ApplyAll(c, g.Batch(8000))
	var want bytes.Buffer
	if err := live.WritePayload(&want, c.StatsSnapshot()); err != nil {
		t.Fatal(err)
	}
	if got != want.String() {
		t.Errorf("cluster merged doc differs from single-node doc:\n%s\nvs\n%s", got, want.String())
	}
}

// TestWindowsOutJournal: -windows-out produces a parseable shard-window
// journal that is byte-identical across reruns.
func TestWindowsOutJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "windows.jsonl")
	clusterOut(t, baseArgs("-manager", "-window", "512", "-hot", "64", "-cold", "8",
		"-windows-out", path)...)
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	desc, windowOps, ws, err := probe.ReadShardWindows(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("journal does not parse: %v", err)
	}
	if len(ws) == 0 || windowOps != 512 {
		t.Fatalf("journal desc=%q windowOps=%d windows=%d, want 512-op windows", desc, windowOps, len(ws))
	}
	path2 := filepath.Join(dir, "windows2.jsonl")
	clusterOut(t, baseArgs("-manager", "-window", "512", "-hot", "64", "-cold", "8",
		"-windows-out", path2)...)
	second, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Error("windows journal differs across reruns")
	}

	// Without -manager the journal is still written, sampled at -window.
	path3 := filepath.Join(dir, "windows3.jsonl")
	clusterOut(t, baseArgs("-window", "512", "-windows-out", path3)...)
	f, err := os.Open(path3)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, ws, err = probe.ReadShardWindows(f); err != nil || len(ws) == 0 {
		t.Fatalf("manager-less journal: windows=%d err=%v", len(ws), err)
	}
}

// TestJournalDir: -journal-dir writes one parseable probe journal per
// node.
func TestJournalDir(t *testing.T) {
	dir := t.TempDir()
	clusterOut(t, baseArgs("-journal-dir", dir)...)
	for i := 0; i < 3; i++ {
		path := filepath.Join(dir, fmt.Sprintf("node-node%d.jsonl", i))
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("missing node journal: %v", err)
		}
		j, err := probe.ReadJournal(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s does not parse: %v", path, err)
		}
		if j.Header.Kind != "cluster-node" {
			t.Errorf("%s kind = %q, want cluster-node", path, j.Header.Kind)
		}
	}
}

// TestConnectMode routes the selftest against two real TCP servers
// (live caches behind proto.ServeConn, exactly what rwpserve -tcp
// runs) and checks the per-node stats come back.
func TestConnectMode(t *testing.T) {
	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = 256, 4, 4
	cfg.Record = true
	cfg.Loader = loadgen.Loader(0)
	addrs := make([]string, 2)
	for i := range addrs {
		c, err := live.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		addrs[i] = ln.Addr().String()
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			proto.ServeConn(conn, c)
		}()
	}
	out := clusterOut(t, "-selftest", "4000", "-sets", "256", "-ways", "4",
		"-shards", "4", "-ring-shards", "16", "-connect", strings.Join(addrs, ","))
	for _, addr := range addrs {
		if !strings.Contains(out, "== node "+addr+" ==") {
			t.Errorf("output missing stats for node %s:\n%s", addr, out)
		}
	}
	if !strings.Contains(out, "\"Hits\"") {
		t.Errorf("output has no stats documents:\n%s", out)
	}
}

// startServers spins n live caches behind real TCP listeners speaking
// proto.ServeConn — exactly what rwpserve -tcp runs — and returns
// their addresses.
func startServers(t *testing.T, n int) []string {
	t.Helper()
	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = 256, 4, 4
	cfg.Record = true
	cfg.Loader = loadgen.Loader(0)
	addrs := make([]string, n)
	for i := range addrs {
		c, err := live.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		addrs[i] = ln.Addr().String()
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			proto.ServeConn(conn, c)
		}()
	}
	return addrs
}

// TestConnectManaged runs the manager against real TCP servers: replica
// adds must be satisfied over the wire, warm (SNAP/RESTORE) every time
// — the servers support the range ops, so the reset fallback should
// never fire.
func TestConnectManaged(t *testing.T) {
	addrs := startServers(t, 3)
	out := clusterOut(t, "-selftest", "8000", "-sets", "256", "-ways", "4",
		"-shards", "4", "-ring-shards", "16", "-connect", strings.Join(addrs, ","),
		"-manager", "-window", "512", "-hot", "24", "-cold", "4")
	if !strings.Contains(out, "== catchup ==") {
		t.Fatalf("managed connect output missing catchup summary:\n%s", out)
	}
	var cmds, snaps, resets int
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "commands=") {
			if _, err := fmt.Sscanf(line, "commands=%d snaps=%d resets=%d", &cmds, &snaps, &resets); err != nil {
				t.Fatalf("catchup line %q does not parse: %v", line, err)
			}
		}
	}
	if cmds == 0 {
		t.Fatal("manager applied no replica commands; test exercised nothing")
	}
	if snaps == 0 || resets != 0 {
		t.Errorf("wire catch-up: snaps=%d resets=%d, want all adds warm", snaps, resets)
	}
}

// TestCatchupBenchGate runs the catch-up bench small; the command
// itself enforces the gate (identical commands, snaps > 0, warm loads
// strictly below cold), so a zero exit is the assertion.
func TestCatchupBenchGate(t *testing.T) {
	out := clusterOut(t, "-catchup-bench", "-bench-ops", "24576", "-sets", "256", "-ways", "4", "-shards", "4")
	if !strings.Contains(out, "gate: backend-loads warm=") {
		t.Fatalf("no gate line in catchup bench output:\n%s", out)
	}
	// Pipe mode must agree with direct on everything the gate prints.
	out2 := clusterOut(t, "-catchup-bench", "-mode", "pipe", "-bench-ops", "24576", "-sets", "256", "-ways", "4", "-shards", "4")
	gate := func(s string) string {
		for _, l := range strings.Split(s, "\n") {
			if strings.HasPrefix(l, "gate:") {
				return l
			}
		}
		return ""
	}
	if gate(out) != gate(out2) {
		t.Errorf("catchup gate differs across modes:\n%s\nvs\n%s", gate(out), gate(out2))
	}
}

// TestBenchGate runs the deterministic bench small and checks the gate
// line holds: managed modeled throughput at or above static, managed
// late-window p99 at or below static.
func TestBenchGate(t *testing.T) {
	out := clusterOut(t, "-bench", "-bench-ops", "24576", "-sets", "256", "-ways", "4", "-shards", "4")
	var ms, mm float64
	var ps, pm int
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "gate:") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no gate line in bench output:\n%s", out)
	}
	if _, err := fmt.Sscanf(line, "gate: model static=%f managed=%f late-p99 static=%d managed=%d",
		&ms, &mm, &ps, &pm); err != nil {
		t.Fatalf("gate line %q does not parse: %v", line, err)
	}
	if mm < ms {
		t.Errorf("managed model throughput %.3f below static %.3f", mm, ms)
	}
	if pm > ps {
		t.Errorf("managed late-p99 %d above static %d", pm, ps)
	}
}

// TestBadArgs pins the flag-surface failure modes.
func TestBadArgs(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-nope"}, 2},
		{"positional args", []string{"-selftest", "10", "extra"}, 2},
		{"nothing to do", []string{}, 2},
		{"bad mode", []string{"-selftest", "10", "-mode", "telegraph"}, 2},
		{"bad policy", []string{"-selftest", "10", "-policy", "fifo"}, 2},
		{"ring shards do not divide sets", []string{"-selftest", "10", "-ring-shards", "3"}, 2},
		{"bench over connect", []string{"-bench", "-connect", "127.0.0.1:1"}, 2},
		{"catchup-bench over connect", []string{"-catchup-bench", "-connect", "127.0.0.1:1"}, 2},
		{"bad manager window", []string{"-selftest", "10", "-manager", "-window", "0"}, 2},
		{"bad profile", []string{"-selftest", "10", "-profile", "nope"}, 2},
	} {
		var out, errbuf bytes.Buffer
		if code := run(tc.args, &out, &errbuf); code != tc.want {
			t.Errorf("%s: run = %d, want %d (stderr: %s)", tc.name, code, tc.want, errbuf.String())
		}
	}
}
