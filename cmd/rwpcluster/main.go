// Command rwpcluster runs the clustered form of the live RWP cache
// (internal/cluster): a consistent-hash ring over N nodes, a routing
// client fanning pipelined binary-protocol batches, and optionally the
// deterministic shard-manager replication loop.
//
//	rwpcluster -selftest 20000                 3 in-process nodes, run a
//	                                           seeded loadgen burst, print
//	                                           the merged /stats JSON, exit
//	rwpcluster -selftest 20000 -mode pipe      same, through real pipelined
//	                                           binary connections (net.Pipe)
//	rwpcluster -selftest 20000 -manager        replication control loop on
//	rwpcluster -bench                          1-node vs 3-node vs managed
//	                                           deterministic cluster bench
//	rwpcluster -catchup-bench                  warm snapshot catch-up vs
//	                                           cold-reset replica adds
//	rwpcluster -selftest 20000 -connect a,b    route against running
//	                                           rwpserve -tcp processes
//	                                           (-manager works here too:
//	                                           replica catch-up runs over
//	                                           the wire via SNAP/RESTORE)
//
// With the manager off the merged document is byte-identical to
// `rwpserve -selftest` at the same geometry, profile and seed — the
// cluster smoke in scripts/check.sh compares the two with cmp. All
// wall-clock concerns live here in cmd/; internal/cluster is clocked
// purely by operation counts.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"

	"rwp/internal/cluster"
	"rwp/internal/live"
	"rwp/internal/live/loadgen"
	"rwp/internal/live/proto"
	"rwp/internal/probe"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rwpcluster", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nodes := fs.Int("nodes", 3, "in-process node count")
	ringShards := fs.Int("ring-shards", 64, "ring shards (must divide -sets)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per node (0: default)")
	policyName := fs.String("policy", "rwp", "replacement policy: lru or rwp")
	sets := fs.Int("sets", 1024, "total sets per node (power of two)")
	ways := fs.Int("ways", 16, "ways per set")
	shards := fs.Int("shards", 8, "lock shards per node (must divide sets)")
	interval := fs.Uint64("interval", 0, "RWP repartition interval in per-set ops (0: default)")
	valueSize := fs.Int("value-size", 0, "synthetic value size in bytes (0: default)")
	noLoader := fs.Bool("no-loader", false, "disable the synthetic backing store")
	probeOn := fs.Bool("probe", true, "attach probe recorders")
	mode := fs.String("mode", "direct", "node transport: direct or pipe")
	pipeline := fs.Int("pipeline", 0, "router flush depth in ops (0: default)")
	selftest := fs.Int("selftest", 0, "run N loadgen ops through the cluster, print merged stats JSON, exit")
	profile := fs.String("profile", "mcf", "workload profile for -selftest")
	seed := fs.Uint64("seed", 0, "loadgen seed offset")
	manager := fs.Bool("manager", false, "enable the shard-manager replication loop")
	window := fs.Int("window", 4096, "manager window in routed ops")
	hot := fs.Uint64("hot", 1024, "reads per window marking a shard hot")
	cold := fs.Uint64("cold", 64, "reads per window marking a shard cold")
	hotP99 := fs.Int("hot-p99", 0, "p99 service cost additionally required to replicate (0: off)")
	maxReplicas := fs.Int("max-replicas", 0, "replica cap per shard (0: node count)")
	windowsOut := fs.String("windows-out", "", "write the shard-window journal to this file")
	journalDir := fs.String("journal-dir", "", "write per-node probe journals under this directory")
	connect := fs.String("connect", "", "comma-separated rwpserve -tcp addresses (real sockets; -manager runs catch-up over the wire)")
	bench := fs.Bool("bench", false, "run the deterministic cluster bench and exit")
	benchOps := fs.Int("bench-ops", 120_000, "ops per bench leg")
	catchupBench := fs.Bool("catchup-bench", false, "run the warm-catchup vs cold-reset replica bench and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "rwpcluster: unexpected arguments %q\n", fs.Args())
		return 2
	}

	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = *sets, *ways, *shards
	cfg.Policy = *policyName
	cfg.Record = *probeOn
	if *interval > 0 {
		cfg.RWP.Interval = *interval
	}
	if !*noLoader {
		// Same backing store as rwpserve, hole at the absent keyspace
		// included, so journals recorded there replay bit-identically.
		cfg.Loader = loadgen.AbsentLoader(*valueSize)
	}

	var mgr *cluster.Manager
	if *manager {
		m, err := cluster.NewManager(cluster.ManagerConfig{
			Window: *window, HotReads: *hot, ColdReads: *cold,
			HotP99: *hotP99, MaxReplicas: *maxReplicas,
		})
		if err != nil {
			fmt.Fprintf(stderr, "rwpcluster: %v\n", err)
			return 2
		}
		mgr = m
	}

	if *bench {
		if *connect != "" {
			fmt.Fprintln(stderr, "rwpcluster: -bench runs in-process only")
			return 2
		}
		if err := runClusterBench(stdout, cfg, *ringShards, *vnodes, *benchOps, *valueSize, *seed); err != nil {
			fmt.Fprintf(stderr, "rwpcluster: %v\n", err)
			return 1
		}
		return 0
	}

	if *catchupBench {
		if *connect != "" {
			fmt.Fprintln(stderr, "rwpcluster: -catchup-bench runs in-process only")
			return 2
		}
		if err := runCatchupBench(stdout, cfg, cluster.Mode(*mode), *ringShards, *vnodes, *benchOps, *valueSize, *seed); err != nil {
			fmt.Fprintf(stderr, "rwpcluster: %v\n", err)
			return 1
		}
		return 0
	}

	if *selftest <= 0 {
		fmt.Fprintln(stderr, "rwpcluster: nothing to do: pass -selftest N or -bench")
		return 2
	}
	g, err := loadgen.New(*profile, *seed, *valueSize)
	if err != nil {
		fmt.Fprintf(stderr, "rwpcluster: %v\n", err)
		return 2
	}
	ops := g.Batch(*selftest)

	if *connect != "" {
		if err := runConnected(stdout, strings.Split(*connect, ","), cfg.Sets, *ringShards, *vnodes, *pipeline, mgr, ops); err != nil {
			fmt.Fprintf(stderr, "rwpcluster: %v\n", err)
			return 1
		}
		return 0
	}

	ids := make([]string, *nodes)
	for i := range ids {
		ids[i] = fmt.Sprintf("node%d", i)
	}
	h, err := cluster.NewHarness(cluster.HarnessConfig{
		NodeIDs:    ids,
		RingShards: *ringShards,
		Vnodes:     *vnodes,
		Cache:      cfg,
		Mode:       cluster.Mode(*mode),
		Manager:    mgr,
		Window:     selftestWindow(mgr, *windowsOut, *window),
		Pipeline:   *pipeline,
	})
	if err != nil {
		fmt.Fprintf(stderr, "rwpcluster: %v\n", err)
		return 2
	}
	if err := h.Client().Replay(ops); err != nil {
		fmt.Fprintf(stderr, "rwpcluster: %v\n", err)
		return 1
	}
	if err := h.Client().Finish(); err != nil {
		fmt.Fprintf(stderr, "rwpcluster: %v\n", err)
		return 1
	}
	doc, err := h.MergedStatsJSON()
	if err != nil {
		fmt.Fprintf(stderr, "rwpcluster: %v\n", err)
		return 1
	}
	if _, err := stdout.Write(doc); err != nil {
		fmt.Fprintf(stderr, "rwpcluster: %v\n", err)
		return 1
	}
	if *windowsOut != "" {
		desc := fmt.Sprintf("profile=%s seed=%d nodes=%d ring-shards=%d", *profile, *seed, *nodes, *ringShards)
		if err := writeWindows(*windowsOut, desc, h.Client()); err != nil {
			fmt.Fprintf(stderr, "rwpcluster: %v\n", err)
			return 1
		}
	}
	if *journalDir != "" {
		if err := h.WriteNodeJournals(*journalDir); err != nil {
			fmt.Fprintf(stderr, "rwpcluster: %v\n", err)
			return 1
		}
	}
	if err := h.Close(); err != nil {
		fmt.Fprintf(stderr, "rwpcluster: %v\n", err)
		return 1
	}
	return 0
}

// selftestWindow picks the manager-less sampling window: when a
// windows journal was requested without a manager, sample at the
// manager cadence anyway so the journal is non-trivial.
func selftestWindow(mgr *cluster.Manager, windowsOut string, window int) int {
	if mgr != nil || windowsOut == "" {
		return 0
	}
	return window
}

// writeWindows serializes the router's shard-window journal.
func writeWindows(path, desc string, cl *cluster.Client) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := probe.WriteShardWindows(f, desc, windowOpsOf(cl), cl.Windows())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// windowOpsOf recovers the journal header's window width from the
// journal itself (records are emitted per closed window; the header
// value is informational).
func windowOpsOf(cl *cluster.Client) int {
	ws := cl.Windows()
	if len(ws) == 0 {
		return 0
	}
	var perWindow uint64
	for _, w := range ws {
		if w.Window == ws[0].Window {
			perWindow += w.Reads + w.Writes
		}
	}
	return int(perWindow)
}

// runConnected routes the op stream against running rwpserve -tcp
// processes: one pipelined binary connection per address, ring shards
// spread across them. With -manager the replication control loop runs
// too: replica adds are satisfied over the wire, warm when possible
// (SNAP from the shard primary, RESTORE onto the new replica) and by a
// remote RESET otherwise. It prints each node's stats document in
// address order, plus a catch-up summary when managed.
func runConnected(w io.Writer, addrs []string, sets, ringShards, vnodes, pipeline int, mgr *cluster.Manager, ops []loadgen.Op) error {
	ring, err := cluster.New(sets, ringShards, addrs, vnodes)
	if err != nil {
		return err
	}
	conns := make([]cluster.NodeConn, len(addrs))
	resetters := make([]cluster.Resetter, len(addrs))
	snapshotters := make([]cluster.Snapshotter, len(addrs))
	restorers := make([]cluster.Restorer, len(addrs))
	for i, addr := range addrs {
		nc, err := net.Dial("tcp", strings.TrimSpace(addr))
		if err != nil {
			return fmt.Errorf("node %s: %w", addr, err)
		}
		cli := proto.NewClient(nc)
		conns[i] = cli
		// A RESET wire failure poisons the connection, so the swallowed
		// error here is not lost — the next data op surfaces it sticky.
		resetters[i] = func(lo, hi int) int { n, _ := cli.ResetRange(lo, hi); return n }
		snapshotters[i] = cli.SnapRange
		restorers[i] = cli.Restore
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	cl, err := cluster.NewClient(cluster.ClientConfig{
		Ring: ring, Conns: conns,
		Resetters: resetters, Snapshotters: snapshotters, Restorers: restorers,
		Manager: mgr, Pipeline: pipeline,
	})
	if err != nil {
		return err
	}
	if err := cl.Replay(ops); err != nil {
		return err
	}
	if err := cl.Finish(); err != nil {
		return err
	}
	for i, conn := range conns {
		data, err := conn.Stats()
		if err != nil {
			return fmt.Errorf("node %s: %w", addrs[i], err)
		}
		fmt.Fprintf(w, "== node %s ==\n", addrs[i])
		if _, err := w.Write(data); err != nil {
			return err
		}
	}
	if mgr != nil {
		snaps, resets := cl.CatchupCounts()
		fmt.Fprintf(w, "== catchup ==\ncommands=%d snaps=%d resets=%d\n",
			len(cl.AppliedCommands()), snaps, resets)
	}
	return nil
}
