package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rwp"
)

func TestRunList(t *testing.T) {
	var out, errbuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errbuf); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errbuf.String())
	}
	s := out.String()
	for _, want := range []string{"policies:", "rwp", "lru", "workloads", "mcf", "SENS"} {
		if !strings.Contains(s, want) {
			t.Errorf("-list output missing %q:\n%s", want, s)
		}
	}
}

func TestRunWorkload(t *testing.T) {
	var out, errbuf bytes.Buffer
	args := []string{"-workload", "mcf", "-policy", "rwp", "-warmup", "20000", "-measure", "50000"}
	if code := run(args, &out, &errbuf); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errbuf.String())
	}
	s := out.String()
	for _, want := range []string{"mcf", "policy=rwp", "IPC=", "rdMPKI=", "llcReadHit="} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunMix(t *testing.T) {
	var out, errbuf bytes.Buffer
	args := []string{"-mix", "gcc,sphinx3,povray,namd", "-policy", "lru", "-warmup", "10000", "-measure", "20000"}
	if code := run(args, &out, &errbuf); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errbuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "throughput=") {
		t.Errorf("mix output missing throughput:\n%s", s)
	}
	for _, w := range []string{"gcc", "sphinx3", "povray", "namd"} {
		if !strings.Contains(s, w) {
			t.Errorf("mix output missing per-core row for %q:\n%s", w, s)
		}
	}
}

func TestRunTraceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mcf.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rwp.WriteTrace(f, "mcf", 60_000); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out, errbuf bytes.Buffer
	args := []string{"-trace", path, "-policy", "rwp", "-warmup", "10000", "-measure", "40000"}
	if code := run(args, &out, &errbuf); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errbuf.String())
	}
	if !strings.Contains(out.String(), "policy=rwp") {
		t.Errorf("trace output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"no mode", nil, 2},
		{"bad flag", []string{"-nope"}, 2},
		{"bad size", []string{"-workload", "mcf", "-llc", "huge"}, 1},
		{"unknown workload", []string{"-workload", "nope", "-measure", "1000"}, 1},
		{"unknown policy", []string{"-workload", "mcf", "-policy", "nope", "-measure", "1000"}, 1},
		{"missing trace", []string{"-trace", "/nonexistent/x.trace"}, 1},
		{"bad mix", []string{"-mix", "mcf,nope", "-measure", "1000"}, 1},
	} {
		var out, errbuf bytes.Buffer
		if code := run(tc.args, &out, &errbuf); code != tc.want {
			t.Errorf("%s: run = %d, want %d (stderr: %s)", tc.name, code, tc.want, errbuf.String())
		}
	}
}
