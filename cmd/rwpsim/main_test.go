package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := map[string]int{
		"":      0,
		"4MiB":  4 << 20,
		"2MB":   2 << 20,
		"1M":    1 << 20,
		"256K":  256 << 10,
		"64KiB": 64 << 10,
		"32KB":  32 << 10,
		"12345": 12345,
		" 8M ":  8 << 20,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"abc", "4GiBB", "-"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}
