// Command rwpsim runs one workload (or a 4-core mix) through the
// simulator and prints the measured metrics.
//
// Examples:
//
//	rwpsim -workload mcf -policy rwp
//	rwpsim -workload mcf -policy lru -llc 4MiB -ways 32
//	rwpsim -mix gcc,sphinx3,povray,namd -policy rwp
//	rwpsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rwp"
)

func parseSize(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	mult := 1
	upper := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(upper, "MIB"), strings.HasSuffix(upper, "MB"), strings.HasSuffix(upper, "M"):
		mult = 1 << 20
		upper = strings.TrimRight(upper, "MIB")
	case strings.HasSuffix(upper, "KIB"), strings.HasSuffix(upper, "KB"), strings.HasSuffix(upper, "K"):
		mult = 1 << 10
		upper = strings.TrimRight(upper, "KIB")
	}
	n, err := strconv.Atoi(strings.TrimSpace(upper))
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func main() {
	var (
		workloadName = flag.String("workload", "", "workload name (see -list)")
		mix          = flag.String("mix", "", "comma-separated workloads for a shared-LLC run")
		traceFile    = flag.String("trace", "", "binary trace file to simulate instead of a workload")
		policyName   = flag.String("policy", "rwp", "LLC policy")
		llcSize      = flag.String("llc", "", "LLC capacity override, e.g. 4MiB")
		ways         = flag.Int("ways", 0, "LLC associativity override")
		warmup       = flag.Uint64("warmup", 0, "warmup accesses per core")
		measure      = flag.Uint64("measure", 0, "measured accesses per core")
		list         = flag.Bool("list", false, "list workloads and policies, then exit")
		seed         = flag.Uint64("seed", 0, "workload random-stream offset (robustness checks)")
	)
	flag.Parse()

	if *list {
		fmt.Println("policies:", strings.Join(rwp.Policies(), " "))
		fmt.Println("workloads (SENS = cache-sensitive):")
		for _, w := range rwp.Workloads() {
			tag := "      "
			if w.CacheSensitive {
				tag = "SENS  "
			}
			fmt.Printf("  %s%-12s intensity=%.2f\n", tag, w.Name, w.MemIntensity)
		}
		return
	}

	size, err := parseSize(*llcSize)
	if err != nil {
		fatal(err)
	}
	cfg := rwp.Config{
		Policy:   *policyName,
		LLCBytes: size,
		LLCWays:  *ways,
		Warmup:   *warmup,
		Measure:  *measure,
		Seed:     *seed,
	}

	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		res, err := rwp.RunTrace(*traceFile, f, cfg)
		if err != nil {
			fatal(err)
		}
		printResult(res)
	case *mix != "":
		names := strings.Split(*mix, ",")
		res, err := rwp.RunMix(names, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("policy=%s throughput=%.3f\n", res.Policy, res.Throughput)
		for _, r := range res.PerCore {
			printResult(r)
		}
	case *workloadName != "":
		res, err := rwp.Run(*workloadName, cfg)
		if err != nil {
			fatal(err)
		}
		printResult(res)
	default:
		fmt.Fprintln(os.Stderr, "rwpsim: need -workload or -mix (or -list)")
		flag.Usage()
		os.Exit(2)
	}
}

func printResult(r rwp.Result) {
	fmt.Printf("%-12s policy=%-6s IPC=%.3f rdMPKI=%.2f totMPKI=%.2f WBPKI=%.2f llcReadHit=%.1f%%\n",
		r.Workload, r.Policy, r.IPC, r.ReadMPKI, r.TotalMPKI, r.WritebacksPKI, r.LLCReadHitRate*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rwpsim:", err)
	os.Exit(1)
}
