// Command rwpsim runs one workload (or a 4-core mix) through the
// simulator and prints the measured metrics.
//
// Examples:
//
//	rwpsim -workload mcf -policy rwp
//	rwpsim -workload mcf -policy lru -llc 4MiB -ways 32
//	rwpsim -mix gcc,sphinx3,povray,namd -policy rwp
//	rwpsim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rwp"
)

func parseSize(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	mult := 1
	upper := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(upper, "MIB"), strings.HasSuffix(upper, "MB"), strings.HasSuffix(upper, "M"):
		mult = 1 << 20
		upper = strings.TrimRight(upper, "MIB")
	case strings.HasSuffix(upper, "KIB"), strings.HasSuffix(upper, "KB"), strings.HasSuffix(upper, "K"):
		mult = 1 << 10
		upper = strings.TrimRight(upper, "KIB")
	}
	n, err := strconv.Atoi(strings.TrimSpace(upper))
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rwpsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workloadName = fs.String("workload", "", "workload name (see -list)")
		mix          = fs.String("mix", "", "comma-separated workloads for a shared-LLC run")
		traceFile    = fs.String("trace", "", "binary trace file to simulate instead of a workload")
		policyName   = fs.String("policy", "rwp", "LLC policy")
		llcSize      = fs.String("llc", "", "LLC capacity override, e.g. 4MiB")
		ways         = fs.Int("ways", 0, "LLC associativity override")
		warmup       = fs.Uint64("warmup", 0, "warmup accesses per core")
		measure      = fs.Uint64("measure", 0, "measured accesses per core")
		list         = fs.Bool("list", false, "list workloads and policies, then exit")
		seed         = fs.Uint64("seed", 0, "workload random-stream offset (robustness checks)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "policies:", strings.Join(rwp.Policies(), " "))
		fmt.Fprintln(stdout, "workloads (SENS = cache-sensitive):")
		for _, w := range rwp.Workloads() {
			tag := "      "
			if w.CacheSensitive {
				tag = "SENS  "
			}
			fmt.Fprintf(stdout, "  %s%-12s intensity=%.2f\n", tag, w.Name, w.MemIntensity)
		}
		return 0
	}

	size, err := parseSize(*llcSize)
	if err != nil {
		fmt.Fprintln(stderr, "rwpsim:", err)
		return 1
	}
	cfg := rwp.Config{
		Policy:   *policyName,
		LLCBytes: size,
		LLCWays:  *ways,
		Warmup:   *warmup,
		Measure:  *measure,
		Seed:     *seed,
	}

	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(stderr, "rwpsim:", err)
			return 1
		}
		defer f.Close()
		res, err := rwp.RunTrace(*traceFile, f, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "rwpsim:", err)
			return 1
		}
		printResult(stdout, res)
	case *mix != "":
		names := strings.Split(*mix, ",")
		res, err := rwp.RunMix(names, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "rwpsim:", err)
			return 1
		}
		fmt.Fprintf(stdout, "policy=%s throughput=%.3f\n", res.Policy, res.Throughput)
		for _, r := range res.PerCore {
			printResult(stdout, r)
		}
	case *workloadName != "":
		res, err := rwp.Run(*workloadName, cfg)
		if err != nil {
			fmt.Fprintln(stderr, "rwpsim:", err)
			return 1
		}
		printResult(stdout, res)
	default:
		fmt.Fprintln(stderr, "rwpsim: need -workload or -mix (or -list)")
		fs.Usage()
		return 2
	}
	return 0
}

func printResult(w io.Writer, r rwp.Result) {
	fmt.Fprintf(w, "%-12s policy=%-6s IPC=%.3f rdMPKI=%.2f totMPKI=%.2f WBPKI=%.2f llcReadHit=%.1f%%\n",
		r.Workload, r.Policy, r.IPC, r.ReadMPKI, r.TotalMPKI, r.WritebacksPKI, r.LLCReadHitRate*100)
}
