package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
	"rwp/internal/probe"
)

// recordRun drives a seeded loadgen stream against a recorded cache
// and returns the journal path plus the original run's stats document
// — the ground truth every replay below must reproduce byte for byte.
func recordRun(t *testing.T, shards int) (journal string, stats []byte) {
	t.Helper()
	cfg := testConfig(shards)
	f, err := os.Create(filepath.Join(t.TempDir(), "reqs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	log, err := probe.NewReqLogWriter(f, "test journal")
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReqLog = log
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := loadgen.New("mcf", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	loadgen.ApplyAll(c, g.Batch(4000))
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	doc, err := c.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	return f.Name(), doc
}

func testConfig(shards int) live.Config {
	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = 128, 4, shards
	cfg.Record = true
	cfg.RWP.Interval = 32
	cfg.Loader = loadgen.Loader(8)
	return cfg
}

// geometry mirrors testConfig as rwpreplay flags.
func geometry(shards string) []string {
	return []string{"-sets", "128", "-ways", "4", "-shards", shards,
		"-interval", "32", "-value-size", "8"}
}

func runReplay(t *testing.T, args []string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("run(%v) = %d, stderr: %s", args, code, errb.String())
	}
	return out.String()
}

// TestReplayEquivalence is the tentpole's differential proof: a
// recorded journal replayed through every transport, at several shard
// counts, paced or full-speed, reproduces the original run's stats
// document byte for byte.
func TestReplayEquivalence(t *testing.T) {
	journal, want := recordRun(t, 4)
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"direct", geometry("4")},
		{"direct-shards-1", geometry("1")},
		{"direct-shards-32", geometry("32")},
		{"http", append(geometry("4"), "-transport", "http")},
		{"tcp", append(geometry("4"), "-transport", "tcp", "-batch", "16", "-pipeline", "4")},
		{"tcp-degenerate", append(geometry("8"), "-transport", "tcp", "-batch", "1", "-pipeline", "1")},
		{"cluster", append(geometry("4"), "-transport", "cluster", "-nodes", "3", "-ring-shards", "32")},
		{"cluster-pipe", append(geometry("4"), "-transport", "cluster", "-nodes", "2", "-ring-shards", "32", "-mode", "pipe")},
		{"paced", append(geometry("4"), "-rate", "2000000")},
	} {
		got := runReplay(t, append([]string{"-in", journal}, tc.args...))
		if got != string(want) {
			t.Errorf("%s: replayed stats differ from the recorded run:\n%s\nvs\n%s", tc.name, got, want)
		}
	}
}

// TestReRecordByteIdentity: replaying with -record reproduces the
// input journal exactly, at any shard count — the capture clock is op
// order, so a journal is a fixed point of record→replay→record.
func TestReRecordByteIdentity(t *testing.T) {
	journal, _ := recordRun(t, 4)
	want, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []string{"1", "4", "16"} {
		out := filepath.Join(t.TempDir(), "rerec.jsonl")
		runReplay(t, append([]string{"-in", journal, "-record", out}, geometry(shards)...))
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("shards=%s: re-recorded journal differs from input", shards)
		}
	}
}

// TestReplayCarriesTelemetry: the replayed document exposes the new
// observability fields (retarget direction split, cost histogram).
func TestReplayCarriesTelemetry(t *testing.T) {
	journal, _ := recordRun(t, 4)
	out := runReplay(t, append([]string{"-in", journal}, geometry("4")...))
	for _, want := range []string{"\"RetargetUp\"", "\"RetargetDown\"", "\"RetargetSame\"", "\"CostHist\""} {
		if !strings.Contains(out, want) {
			t.Errorf("replayed stats missing %s:\n%s", want, out)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	journal, _ := recordRun(t, 4)
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"no input", nil, 2},
		{"bad flag", []string{"-nope"}, 2},
		{"positional", []string{"-in", journal, "extra"}, 2},
		{"bad transport", []string{"-in", journal, "-transport", "smoke-signal"}, 2},
		{"cluster re-record", []string{"-in", journal, "-transport", "cluster", "-record", "x.jsonl"}, 2},
		{"missing journal", []string{"-in", filepath.Join(t.TempDir(), "nope.jsonl")}, 1},
		{"bad geometry", []string{"-in", journal, "-sets", "100"}, 1},
	} {
		var out, errb bytes.Buffer
		if code := run(tc.args, &out, &errb); code != tc.want {
			t.Errorf("%s: run = %d, want %d (stderr: %s)", tc.name, code, tc.want, errb.String())
		}
	}
}

// TestReplayRejectsCorruptJournal: a truncated journal fails loudly
// rather than replaying a prefix.
func TestReplayRejectsCorruptJournal(t *testing.T) {
	journal, _ := recordRun(t, 4)
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.jsonl")
	if err := os.WriteFile(cut, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run(append([]string{"-in", cut}, geometry("4")...), &out, &errb); code != 1 {
		t.Fatalf("truncated journal: run = %d, want 1 (stderr: %s)", code, errb.String())
	}
}
