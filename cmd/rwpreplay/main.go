// Command rwpreplay drives a recorded request journal (rwpserve
// -record, schema rwp-reqlog-v1) back through any transport:
//
//	rwpreplay -in reqs.jsonl                          in-process replay,
//	                                                  print /stats JSON
//	rwpreplay -in reqs.jsonl -transport tcp           same stream over a
//	                                                  loopback binary
//	                                                  connection
//	rwpreplay -in reqs.jsonl -transport cluster       3-node in-process
//	                                                  cluster, merged
//	                                                  stats
//	rwpreplay -in reqs.jsonl -rate 5000               paced at ~5000
//	                                                  ops/s
//	rwpreplay -in reqs.jsonl -record again.jsonl      re-record while
//	                                                  replaying
//
// The replay equivalence contract: a journal recorded at some cache
// geometry, replayed at that same geometry (any -shards, any
// -transport), produces a stats document byte-identical to the
// recorded run's — scripts/check.sh gates this with cmp. Re-recording
// a replay reproduces the input journal byte for byte, because capture
// is clocked by op order, not wall time or transport framing.
//
// Pacing (-rate) is a wall-clock concern and so lives here in cmd/;
// it chunks the stream and never reorders it, so paced and full-speed
// replays yield identical stats.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rwp/internal/cluster"
	"rwp/internal/live"
	"rwp/internal/live/drive"
	"rwp/internal/live/loadgen"
	"rwp/internal/probe"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rwpreplay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "request journal to replay (required; schema rwp-reqlog-v1)")
	transport := fs.String("transport", "direct", "replay transport: direct, http, tcp, or cluster")
	policyName := fs.String("policy", "rwp", "replacement policy: lru or rwp")
	sets := fs.Int("sets", 1024, "total sets (power of two); match the recorded run")
	ways := fs.Int("ways", 16, "ways per set; match the recorded run")
	shards := fs.Int("shards", 8, "lock shards (behavior-invariant)")
	interval := fs.Uint64("interval", 0, "RWP repartition interval in per-set ops (0: default)")
	valueSize := fs.Int("value-size", 0, "loader value size in bytes (0: default); match the recorded run")
	noLoader := fs.Bool("no-loader", false, "disable the synthetic backing store")
	probeOn := fs.Bool("probe", true, "attach probe recorders (probe section of /stats)")
	batch := fs.Int("batch", 64, "max ops per binary MGET/MPUT frame (tcp transport)")
	pipeline := fs.Int("pipeline", 8, "frames per pipelined flush (tcp/cluster transport)")
	rate := fs.Int("rate", 0, "target replay rate in ops/sec (0: full speed)")
	recordPath := fs.String("record", "", "re-record the replay to this journal (not with -transport cluster)")
	nodes := fs.Int("nodes", 3, "cluster transport: in-process node count")
	ringShards := fs.Int("ring-shards", 64, "cluster transport: ring shards (must divide -sets)")
	vnodes := fs.Int("vnodes", 0, "cluster transport: virtual nodes per node (0: default)")
	mode := fs.String("mode", "direct", "cluster transport: node links, direct or pipe")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "rwpreplay: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *in == "" {
		fmt.Fprintln(stderr, "rwpreplay: -in is required")
		return 2
	}
	if *transport != "cluster" {
		if _, err := drive.ParseTransport(*transport); err != nil {
			fmt.Fprintf(stderr, "rwpreplay: %v (or cluster)\n", err)
			return 2
		}
	} else if *recordPath != "" {
		fmt.Fprintln(stderr, "rwpreplay: -record needs a single cache (drop -transport cluster)")
		return 2
	}

	desc, evs, err := readJournal(*in)
	if err != nil {
		fmt.Fprintf(stderr, "rwpreplay: %v\n", err)
		return 1
	}
	ops := drive.Ops(evs)

	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = *sets, *ways, *shards
	cfg.Policy = *policyName
	cfg.Record = *probeOn
	if *interval > 0 {
		cfg.RWP.Interval = *interval
	}
	if !*noLoader {
		// Same backing store as rwpserve, hole at the absent keyspace
		// included, so journals recorded there replay bit-identically.
		cfg.Loader = loadgen.AbsentLoader(*valueSize)
	}

	if *transport == "cluster" {
		err = replayCluster(stdout, cfg, ops, *nodes, *ringShards, *vnodes, *mode, *pipeline, *rate)
	} else {
		err = replaySingle(stdout, cfg, ops, desc, *transport, *batch, *pipeline, *rate, *recordPath)
	}
	if err != nil {
		fmt.Fprintf(stderr, "rwpreplay: %v\n", err)
		return 1
	}
	return 0
}

// readJournal loads the recorded request stream.
func readJournal(path string) (desc string, evs []probe.ReqEvent, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	return probe.ReadReqLog(f)
}

// replaySingle drives the stream through one cache behind the chosen
// transport and prints the stats document fetched through that same
// transport. With outPath set, the replay is itself recorded — the
// re-recorded journal reproduces the input byte for byte (same desc,
// same events) when the geometry matches the original run.
func replaySingle(w io.Writer, cfg live.Config, ops []loadgen.Op, desc, transport string, batch, depth, rate int, outPath string) error {
	var closeLog func() error
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		log, err := probe.NewReqLogWriter(f, desc)
		if err != nil {
			f.Close()
			return err
		}
		cfg.ReqLog = log
		closeLog = func() error {
			werr := log.Close()
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			return werr
		}
	}
	c, err := live.New(cfg)
	if err != nil {
		return err
	}
	tgt, err := drive.New(transport, c, batch, depth)
	if err != nil {
		return err
	}
	defer tgt.Close()
	if err := paced(ops, rate, tgt.Replay); err != nil {
		return err
	}
	if closeLog != nil {
		if err := closeLog(); err != nil {
			return err
		}
	}
	data, err := tgt.StatsJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// replayCluster drives the stream through an in-process cluster and
// prints the merged stats document. At replication factor one (no
// manager) the merged document is byte-identical to a single-node
// replay at the same geometry — the cluster leg of the record→replay
// smoke compares exactly that.
func replayCluster(w io.Writer, cfg live.Config, ops []loadgen.Op, nodes, ringShards, vnodes int, mode string, pipeline, rate int) error {
	ids := make([]string, nodes)
	for i := range ids {
		ids[i] = fmt.Sprintf("node%d", i)
	}
	h, err := cluster.NewHarness(cluster.HarnessConfig{
		NodeIDs:    ids,
		RingShards: ringShards,
		Vnodes:     vnodes,
		Cache:      cfg,
		Mode:       cluster.Mode(mode),
		Pipeline:   pipeline,
	})
	if err != nil {
		return err
	}
	if err := paced(ops, rate, h.Client().Replay); err != nil {
		return err
	}
	if err := h.Client().Finish(); err != nil {
		return err
	}
	doc, err := h.MergedStatsJSON()
	if err != nil {
		return err
	}
	if _, err := w.Write(doc); err != nil {
		return err
	}
	return h.Close()
}

// paced applies the stream through apply, either whole (rate <= 0) or
// chunked onto a wall-clock ticker at ~rate ops/sec. Chunks preserve
// stream order, so pacing cannot change any op-count-clocked outcome.
func paced(ops []loadgen.Op, rate int, apply func([]loadgen.Op) error) error {
	if rate <= 0 {
		return apply(ops)
	}
	const tick = 50 * time.Millisecond
	chunk := rate / int(time.Second/tick)
	if chunk < 1 {
		chunk = 1
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for len(ops) > 0 {
		n := chunk
		if n > len(ops) {
			n = len(ops)
		}
		if err := apply(ops[:n]); err != nil {
			return err
		}
		ops = ops[n:]
		if len(ops) > 0 {
			<-t.C
		}
	}
	return nil
}
