// Command rwpstat loads run journals written by `rwpexp -metrics-dir`
// (canonical JSONL, schema internal/probe) and renders them as tables:
// per-run headline results, run-level cache-event aggregates split by
// request class and partition, and (with -series) the per-interval time
// series of IPC, read misses and partition occupancy.
//
// Examples:
//
//	rwpstat results/metrics/single-ab12cd….jsonl
//	rwpstat -dir results/metrics
//	rwpstat -dir results/metrics -series
//
// Cluster runs (rwpcluster -journal-dir) write one probe journal per
// node; pass each with a repeated -journal flag to get the merged
// cluster table — per-node rows plus a summed merged row. The merge is
// order-independent: flag order never changes the output.
//
//	rwpstat -journal j/node-node0.jsonl -journal j/node-node1.jsonl
//
// With -live it instead polls a running rwpserve's /stats endpoint and
// streams one line of interval deltas per poll (ops, read hit rate,
// retarget direction split, exact interval p99 service cost):
//
//	rwpstat -live 127.0.0.1:8344 -every 2s
//	rwpstat -live http://127.0.0.1:8344/stats -polls 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"time"

	"rwp/internal/probe"
	"rwp/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body: parse flags, load every journal, render.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rwpstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "load every *.jsonl journal in this directory")
	series := fs.Bool("series", false, "also render each journal's per-interval time series")
	liveURL := fs.String("live", "", "poll a running rwpserve (host:port or /stats URL) and print interval deltas")
	every := fs.Duration("every", time.Second, "polling cadence for -live")
	polls := fs.Int("polls", 0, "number of polls for -live (0: poll until the connection fails)")
	var clusterFiles []string
	fs.Func("journal", "repeatable: cluster node journal for the merged cluster table", func(s string) error {
		clusterFiles = append(clusterFiles, s)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *liveURL != "" {
		if fs.NArg() > 0 || *dir != "" || len(clusterFiles) > 0 {
			fmt.Fprintln(stderr, "rwpstat: -live does not combine with journal arguments")
			return 2
		}
		if err := runLive(stdout, *liveURL, *every, *polls, nil); err != nil {
			fmt.Fprintf(stderr, "rwpstat: %v\n", err)
			return 1
		}
		return 0
	}
	paths, err := journalPaths(*dir, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "rwpstat: %v\n", err)
		return 1
	}
	if len(paths) == 0 && len(clusterFiles) == 0 {
		fmt.Fprintln(stderr, "rwpstat: no journals: pass files, -dir, or -journal (see -h)")
		return 2
	}
	var loaded []*namedJournal
	for _, p := range paths {
		j, err := loadJournal(p)
		if err != nil {
			fmt.Fprintf(stderr, "rwpstat: %v\n", err)
			return 1
		}
		loaded = append(loaded, j)
	}
	var nodes []*namedJournal
	for _, p := range clusterFiles {
		j, err := loadJournal(p)
		if err != nil {
			fmt.Fprintf(stderr, "rwpstat: %v\n", err)
			return 1
		}
		nodes = append(nodes, j)
	}
	if len(loaded) > 0 {
		if err := render(stdout, loaded, *series); err != nil {
			fmt.Fprintf(stderr, "rwpstat: %v\n", err)
			return 1
		}
	}
	if len(nodes) > 0 {
		if len(loaded) > 0 {
			fmt.Fprintln(stdout)
		}
		if err := renderCluster(stdout, nodes); err != nil {
			fmt.Fprintf(stderr, "rwpstat: %v\n", err)
			return 1
		}
	}
	return 0
}

// namedJournal pairs a decoded journal with its display label.
type namedJournal struct {
	label string
	j     *probe.Journal
}

// journalPaths merges explicit files with a directory listing. The
// directory's journals are sorted by name, so output order is
// deterministic regardless of filesystem enumeration order.
func journalPaths(dir string, files []string) ([]string, error) {
	paths := append([]string(nil), files...)
	if dir != "" {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var fromDir []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".jsonl") {
				fromDir = append(fromDir, filepath.Join(dir, e.Name()))
			}
		}
		sort.Strings(fromDir)
		paths = append(paths, fromDir...)
	}
	return paths, nil
}

func loadJournal(path string) (*namedJournal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	j, err := probe.ReadJournal(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	label := j.Header.Desc
	if label == "" {
		label = filepath.Base(path)
	}
	return &namedJournal{label: label, j: j}, nil
}

// render writes the results table, the cache-events table, and (when
// series is set) one time-series table per journal.
func render(w io.Writer, journals []*namedJournal, series bool) error {
	res := report.New("run results",
		"journal", "workload", "policy", "IPC", "rdMPKI", "totMPKI", "WBPKI")
	for _, nj := range journals {
		for _, r := range nj.j.Results {
			res.AddRow(nj.label, r.Workload, r.Policy,
				report.F(r.IPC, 3), report.F(r.ReadMPKI, 2),
				report.F(r.TotalMPKI, 2), report.F(r.WBPKI, 2))
		}
	}
	if err := res.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	ev := report.New("cache events (measured region)",
		"journal", "accesses", "hits", "hit-clean", "hit-dirty",
		"bypasses", "evict-clean", "evict-dirty", "retargets", "final-d")
	for _, nj := range journals {
		var acc, hits, hitClean, hitDirty, byp uint64
		for c := probe.Class(0); c < probe.NumClasses; c++ {
			cc := nj.j.Classes[c]
			acc += cc.Accesses
			hits += cc.Hits
			hitClean += cc.HitsClean
			hitDirty += cc.HitsDirty
			byp += cc.Bypasses
		}
		finalD := "-"
		if d := nj.j.FinalTarget(); d >= 0 {
			finalD = report.I(d)
		}
		ev.AddRow(nj.label, report.I(acc), report.I(hits),
			report.I(hitClean), report.I(hitDirty), report.I(byp),
			report.I(nj.j.EvictClean), report.I(nj.j.EvictDirty),
			report.I(len(nj.j.Retargets)), finalD)
	}
	ev.Note = "final-d is RWP's last dirty-partition target; '-' = not an RWP-family policy"
	if err := ev.Render(w); err != nil {
		return err
	}

	if !series {
		return nil
	}
	for _, nj := range journals {
		fmt.Fprintln(w)
		if err := seriesTable(nj).Render(w); err != nil {
			return err
		}
	}
	return nil
}

// renderCluster writes the merged cluster table: one row per node
// journal plus a summed merged row. Nodes are sorted by label before
// rendering and every merged cell is a commutative sum, so the table
// is invariant to -journal argument order — the property the cluster's
// "merged view equals single-node view" differential tests rely on.
func renderCluster(w io.Writer, nodes []*namedJournal) error {
	sorted := append([]*namedJournal(nil), nodes...)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i].label < sorted[k].label })

	t := report.New(fmt.Sprintf("cluster (merged over %d node journals)", len(sorted)),
		"node", "accesses", "hits", "hit-rate", "rd-hit-rate", "hit-clean", "hit-dirty",
		"bypasses", "evict-clean", "evict-dirty", "retargets", "p99-cost")
	var sum, sumLoad probe.ClassCounters
	var sumCosts probe.CostHist
	var evClean, evDirty uint64
	var retargets int
	rate := func(hits, accesses uint64) string {
		if accesses == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(accesses))
	}
	row := func(label string, cc, load probe.ClassCounters, costs probe.CostHist, ec, ed uint64, rt int) {
		// Old journals carry no costs record: render '-' rather than a
		// misleading 0.
		p99 := "-"
		if costs.N() > 0 {
			p99 = report.I(costs.Percentile(99))
		}
		t.AddRow(label, report.I(cc.Accesses), report.I(cc.Hits),
			rate(cc.Hits, cc.Accesses), rate(load.Hits, load.Accesses),
			report.I(cc.HitsClean), report.I(cc.HitsDirty), report.I(cc.Bypasses),
			report.I(ec), report.I(ed), report.I(rt), p99)
	}
	for _, nj := range sorted {
		var cc probe.ClassCounters
		for c := probe.Class(0); c < probe.NumClasses; c++ {
			cc.Add(nj.j.Classes[c])
		}
		load := nj.j.Classes[probe.Load]
		row(nj.label, cc, load, nj.j.Costs, nj.j.EvictClean, nj.j.EvictDirty, len(nj.j.Retargets))
		sum.Add(cc)
		sumLoad.Add(load)
		sumCosts.Add(nj.j.Costs)
		evClean += nj.j.EvictClean
		evDirty += nj.j.EvictDirty
		retargets += len(nj.j.Retargets)
	}
	t.AddRule()
	row("merged", sum, sumLoad, sumCosts, evClean, evDirty, retargets)
	t.Note = "rows sorted by journal label; merged row is the order-independent sum; rd-hit-rate is the Load class alone"
	return t.Render(w)
}

// seriesTable renders one journal's interval records. Instructions,
// cycles and read misses are stored cumulatively; the table shows
// per-window deltas (and the window IPC derived from them), which is
// what partition-dynamics plots want.
func seriesTable(nj *namedJournal) *report.Table {
	t := report.New(fmt.Sprintf("time series: %s (window %d accesses)", nj.label, nj.j.Header.Window),
		"interval", "end-access", "dInsts", "dCycles", "IPC", "dRdMiss", "d-target", "dirty", "valid")
	var prevI, prevC, prevM uint64
	for _, iv := range nj.j.Intervals {
		dI := iv.Instructions - prevI
		dC := iv.Cycles - prevC
		dM := iv.LLCReadMisses - prevM
		prevI, prevC, prevM = iv.Instructions, iv.Cycles, iv.LLCReadMisses
		ipc := "-"
		if dC > 0 {
			ipc = report.F(float64(dI)/float64(dC), 3)
		}
		target := "-"
		if iv.DirtyTarget >= 0 {
			target = report.I(iv.DirtyTarget)
		}
		t.AddRow(report.I(iv.Index), report.I(iv.EndAccess),
			report.I(dI), report.I(dC), ipc, report.I(dM),
			target, report.I(iv.DirtyLines), report.I(iv.ValidLines))
	}
	return t
}
