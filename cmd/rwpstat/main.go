// Command rwpstat loads run journals written by `rwpexp -metrics-dir`
// (canonical JSONL, schema internal/probe) and renders them as tables:
// per-run headline results, run-level cache-event aggregates split by
// request class and partition, and (with -series) the per-interval time
// series of IPC, read misses and partition occupancy.
//
// Examples:
//
//	rwpstat results/metrics/single-ab12cd….jsonl
//	rwpstat -dir results/metrics
//	rwpstat -dir results/metrics -series
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rwp/internal/probe"
	"rwp/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body: parse flags, load every journal, render.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rwpstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "load every *.jsonl journal in this directory")
	series := fs.Bool("series", false, "also render each journal's per-interval time series")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths, err := journalPaths(*dir, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "rwpstat: %v\n", err)
		return 1
	}
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "rwpstat: no journals: pass files or -dir (see -h)")
		return 2
	}
	var loaded []*namedJournal
	for _, p := range paths {
		j, err := loadJournal(p)
		if err != nil {
			fmt.Fprintf(stderr, "rwpstat: %v\n", err)
			return 1
		}
		loaded = append(loaded, j)
	}
	if err := render(stdout, loaded, *series); err != nil {
		fmt.Fprintf(stderr, "rwpstat: %v\n", err)
		return 1
	}
	return 0
}

// namedJournal pairs a decoded journal with its display label.
type namedJournal struct {
	label string
	j     *probe.Journal
}

// journalPaths merges explicit files with a directory listing. The
// directory's journals are sorted by name, so output order is
// deterministic regardless of filesystem enumeration order.
func journalPaths(dir string, files []string) ([]string, error) {
	paths := append([]string(nil), files...)
	if dir != "" {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var fromDir []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".jsonl") {
				fromDir = append(fromDir, filepath.Join(dir, e.Name()))
			}
		}
		sort.Strings(fromDir)
		paths = append(paths, fromDir...)
	}
	return paths, nil
}

func loadJournal(path string) (*namedJournal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	j, err := probe.ReadJournal(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	label := j.Header.Desc
	if label == "" {
		label = filepath.Base(path)
	}
	return &namedJournal{label: label, j: j}, nil
}

// render writes the results table, the cache-events table, and (when
// series is set) one time-series table per journal.
func render(w io.Writer, journals []*namedJournal, series bool) error {
	res := report.New("run results",
		"journal", "workload", "policy", "IPC", "rdMPKI", "totMPKI", "WBPKI")
	for _, nj := range journals {
		for _, r := range nj.j.Results {
			res.AddRow(nj.label, r.Workload, r.Policy,
				report.F(r.IPC, 3), report.F(r.ReadMPKI, 2),
				report.F(r.TotalMPKI, 2), report.F(r.WBPKI, 2))
		}
	}
	if err := res.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	ev := report.New("cache events (measured region)",
		"journal", "accesses", "hits", "hit-clean", "hit-dirty",
		"bypasses", "evict-clean", "evict-dirty", "retargets", "final-d")
	for _, nj := range journals {
		var acc, hits, hitClean, hitDirty, byp uint64
		for c := probe.Class(0); c < probe.NumClasses; c++ {
			cc := nj.j.Classes[c]
			acc += cc.Accesses
			hits += cc.Hits
			hitClean += cc.HitsClean
			hitDirty += cc.HitsDirty
			byp += cc.Bypasses
		}
		finalD := "-"
		if d := nj.j.FinalTarget(); d >= 0 {
			finalD = report.I(d)
		}
		ev.AddRow(nj.label, report.I(acc), report.I(hits),
			report.I(hitClean), report.I(hitDirty), report.I(byp),
			report.I(nj.j.EvictClean), report.I(nj.j.EvictDirty),
			report.I(len(nj.j.Retargets)), finalD)
	}
	ev.Note = "final-d is RWP's last dirty-partition target; '-' = not an RWP-family policy"
	if err := ev.Render(w); err != nil {
		return err
	}

	if !series {
		return nil
	}
	for _, nj := range journals {
		fmt.Fprintln(w)
		if err := seriesTable(nj).Render(w); err != nil {
			return err
		}
	}
	return nil
}

// seriesTable renders one journal's interval records. Instructions,
// cycles and read misses are stored cumulatively; the table shows
// per-window deltas (and the window IPC derived from them), which is
// what partition-dynamics plots want.
func seriesTable(nj *namedJournal) *report.Table {
	t := report.New(fmt.Sprintf("time series: %s (window %d accesses)", nj.label, nj.j.Header.Window),
		"interval", "end-access", "dInsts", "dCycles", "IPC", "dRdMiss", "d-target", "dirty", "valid")
	var prevI, prevC, prevM uint64
	for _, iv := range nj.j.Intervals {
		dI := iv.Instructions - prevI
		dC := iv.Cycles - prevC
		dM := iv.LLCReadMisses - prevM
		prevI, prevC, prevM = iv.Instructions, iv.Cycles, iv.LLCReadMisses
		ipc := "-"
		if dC > 0 {
			ipc = report.F(float64(dI)/float64(dC), 3)
		}
		target := "-"
		if iv.DirtyTarget >= 0 {
			target = report.I(iv.DirtyTarget)
		}
		t.AddRow(report.I(iv.Index), report.I(iv.EndAccess),
			report.I(dI), report.I(dC), ipc, report.I(dM),
			target, report.I(iv.DirtyLines), report.I(iv.ValidLines))
	}
	return t
}
