package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rwp/internal/probe"
)

// writeTestJournal synthesizes a journal through the real probe codec.
func writeTestJournal(t *testing.T, path string) {
	t.Helper()
	rec := probe.NewRecorder(50_000)
	rec.CacheAccess(probe.AccessEvent{Level: "LLC", Class: probe.Load, Hit: true})
	rec.CacheAccess(probe.AccessEvent{Level: "LLC", Class: probe.Load, Hit: true, LineDirty: true})
	rec.CacheAccess(probe.AccessEvent{Level: "LLC", Class: probe.Store, Hit: false})
	rec.CacheFill(probe.FillEvent{Level: "LLC", Class: probe.Store, Dirty: true})
	rec.CacheEvict(probe.EvictEvent{Level: "LLC", Class: probe.Store, Dirty: true})
	rec.Retarget(probe.RetargetEvent{Interval: 1, Target: 5, Accesses: 100_000})
	rec.IntervalEnd(probe.IntervalEvent{Index: 0, EndAccess: 50_000, Instructions: 40_000,
		Cycles: 90_000, LLCReadMisses: 700, DirtyTarget: 5, DirtyLines: 300, ValidLines: 2048})
	rec.IntervalEnd(probe.IntervalEvent{Index: 1, EndAccess: 100_000, Instructions: 85_000,
		Cycles: 170_000, LLCReadMisses: 1500, DirtyTarget: 5, DirtyLines: 450, ValidLines: 2048})
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	err = probe.WriteJournal(f,
		probe.Header{Kind: "single", Desc: "mcf/rwp"},
		[]probe.ResultRecord{{Workload: "mcf", Policy: "rwp", IPC: 0.875,
			ReadMPKI: 12.34, TotalMPKI: 15.5, WBPKI: 4.25, Instructions: 85_000}},
		rec)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSummary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "single-abc.jsonl")
	writeTestJournal(t, path)
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"mcf", "rwp", "0.875", "12.34", "mcf/rwp", "final-d"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "time series") {
		t.Error("series table rendered without -series")
	}
}

func TestRunSeriesAndDir(t *testing.T) {
	dir := t.TempDir()
	writeTestJournal(t, filepath.Join(dir, "single-abc.jsonl"))
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", dir, "-series"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "time series: mcf/rwp (window 50000 accesses)") {
		t.Fatalf("series table missing:\n%s", got)
	}
	// Interval 1's per-window deltas: 85000-40000 instructions over
	// 170000-90000 cycles = IPC 0.5625 (rendered 0.562, round-half-even);
	// read-miss delta 800.
	for _, want := range []string{"45000", "80000", "0.562", "800"} {
		if !strings.Contains(got, want) {
			t.Errorf("series missing %q:\n%s", want, got)
		}
	}
}

func TestRunDeterministicOrder(t *testing.T) {
	dir := t.TempDir()
	writeTestJournal(t, filepath.Join(dir, "b.jsonl"))
	writeTestJournal(t, filepath.Join(dir, "a.jsonl"))
	var out1, out2 bytes.Buffer
	if code := run([]string{"-dir", dir}, &out1, &out2); code != 0 {
		t.Fatal("run failed")
	}
	var again bytes.Buffer
	if code := run([]string{"-dir", dir}, &again, &out2); code != 0 {
		t.Fatal("rerun failed")
	}
	if out1.String() != again.String() {
		t.Fatal("two loads of the same directory rendered differently")
	}
}

// writeNodeJournal synthesizes a cluster-node journal with n load hits
// and one store miss, so different n values give distinguishable rows.
func writeNodeJournal(t *testing.T, path, desc string, n int) {
	t.Helper()
	rec := probe.NewRecorder(0)
	for i := 0; i < n; i++ {
		rec.CacheAccess(probe.AccessEvent{Level: "LLC", Class: probe.Load, Hit: true})
	}
	rec.CacheAccess(probe.AccessEvent{Level: "LLC", Class: probe.Store, Hit: false})
	rec.CacheEvict(probe.EvictEvent{Level: "LLC", Class: probe.Store, Dirty: true})
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := probe.WriteJournal(f, probe.Header{Kind: "cluster-node", Desc: desc}, nil, rec); err != nil {
		t.Fatal(err)
	}
}

// TestClusterMergedTable: repeated -journal flags render the merged
// cluster table, whose bytes are invariant to flag order.
func TestClusterMergedTable(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "node-a.jsonl")
	b := filepath.Join(dir, "node-b.jsonl")
	writeNodeJournal(t, a, "node a", 10)
	writeNodeJournal(t, b, "node b", 4)

	var out, errb bytes.Buffer
	if code := run([]string{"-journal", a, "-journal", b}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "cluster (merged over 2 node journals)") {
		t.Fatalf("cluster table missing:\n%s", got)
	}
	// node a: 11 accesses / 10 hits (90.9%); node b: 5/4 (80.0%);
	// merged: 16/14 (87.5%).
	for _, want := range []string{"node a", "node b", "merged", "16", "14",
		"90.9%", "80.0%", "87.5%"} {
		if !strings.Contains(got, want) {
			t.Errorf("cluster table missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "run results") {
		t.Errorf("per-run tables rendered with only -journal inputs:\n%s", got)
	}

	var swapped bytes.Buffer
	if code := run([]string{"-journal", b, "-journal", a}, &swapped, &errb); code != 0 {
		t.Fatalf("swapped exit %d, stderr: %s", code, errb.String())
	}
	if got != swapped.String() {
		t.Errorf("cluster table depends on -journal order:\n%s\nvs\n%s", got, swapped.String())
	}
}

// TestClusterWithSingles: -journal composes with plain journal args —
// both table groups render.
func TestClusterWithSingles(t *testing.T) {
	dir := t.TempDir()
	single := filepath.Join(dir, "single.jsonl")
	node := filepath.Join(dir, "node-a.jsonl")
	writeTestJournal(t, single)
	writeNodeJournal(t, node, "node a", 3)
	var out, errb bytes.Buffer
	if code := run([]string{"-journal", node, single}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"run results", "cache events", "cluster (merged over 1 node journals)"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no inputs: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/x.jsonl"}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errb); code != 1 {
		t.Errorf("malformed journal: exit %d, want 1", code)
	}
}
