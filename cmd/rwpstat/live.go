package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"rwp/internal/live"
	"rwp/internal/probe"
)

// runLive polls a running rwpserve's /stats endpoint and prints one
// line of interval deltas per poll: operation counts, the interval's
// read hit rate, the retarget-decision direction split, the exact p99
// service cost of just that interval (the cumulative histograms are
// bucket-wise subtractable, so the interval percentile is exact, not
// an average of averages), and the stampede-defense work — coalesced
// fills and negative-cache hits, each a backend call the interval's
// traffic did not make.
//
// Polling cadence is wall clock (this is cmd/; the server itself stays
// op-count clocked). If the server restarts or its stats are reset
// between polls, the counters run backwards; the poller detects that,
// prints a reset marker, and re-baselines.
func runLive(w io.Writer, url string, every time.Duration, polls int, client *http.Client) error {
	if client == nil {
		client = http.DefaultClient
	}
	url = strings.TrimSuffix(url, "/")
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/stats") {
		url += "/stats"
	}

	fmt.Fprintf(w, "%-6s %10s %10s %8s %22s %9s %11s %10s %9s %8s\n",
		"poll", "gets", "puts", "rd-hit", "retargets(+/-/=)", "p99-cost", "p99-c/d", "coal/neg", "entries", "dirty")

	var prev live.StatsPayload
	have := false
	for n := 0; polls <= 0 || n < polls; n++ {
		if n > 0 {
			time.Sleep(every)
		}
		cur, err := fetchStats(client, url)
		if err != nil {
			return err
		}
		if have && cur.Stats.Gets+cur.Stats.Puts < prev.Stats.Gets+prev.Stats.Puts {
			fmt.Fprintf(w, "%-6s stats went backwards (server restart or reset); re-baselining\n", "--")
			have = false
		}
		if !have {
			prev = cur
			have = true
			fmt.Fprintf(w, "%-6d %10s %10s %8s %22s %9s %11s %10s %9d %8d  (baseline: %d ops total)\n",
				n, "-", "-", "-", "-", "-", "-", "-", cur.Stats.Entries, cur.Stats.DirtyEntries,
				cur.Stats.Gets+cur.Stats.Puts)
			continue
		}
		d := cur.Stats
		dGets := d.Gets - prev.Stats.Gets
		dHits := d.GetHits - prev.Stats.GetHits
		dPuts := d.Puts - prev.Stats.Puts
		rdHit := "-"
		if dGets > 0 {
			rdHit = fmt.Sprintf("%.1f%%", 100*float64(dHits)/float64(dGets))
		}
		retarg := fmt.Sprintf("+%d/-%d/=%d",
			d.RetargetUp-prev.Stats.RetargetUp,
			d.RetargetDown-prev.Stats.RetargetDown,
			d.RetargetSame-prev.Stats.RetargetSame)
		p99 := "-"
		if dh, ok := costDelta(prev.Stats.CostHist, d.CostHist); ok && dh.N() > 0 {
			p99 = fmt.Sprintf("%d", dh.Percentile(99))
		}
		// The clean/dirty split of the same interval histogram: dirty
		// (write-partition) hits trending costlier than clean ones is the
		// live signature of the RWP write-line separation at work.
		splitP99 := func(prevH, curH probe.CostHist) string {
			if dh, ok := costDelta(prevH, curH); ok && dh.N() > 0 {
				return fmt.Sprintf("%d", dh.Percentile(99))
			}
			return "-"
		}
		p99cd := splitP99(prev.Stats.CostHistClean, d.CostHistClean) + "/" +
			splitP99(prev.Stats.CostHistDirty, d.CostHistDirty)
		// The interval's stampede-defense work: backend calls the cache
		// avoided by coalescing onto an in-flight fill and by answering
		// from a negative-cache verdict. 0/0 simply means the defenses
		// are off or the traffic had no miss storms this interval.
		defense := fmt.Sprintf("%d/%d",
			d.CoalescedLoads-prev.Stats.CoalescedLoads,
			d.NegHits-prev.Stats.NegHits)
		fmt.Fprintf(w, "%-6d %10d %10d %8s %22s %9s %11s %10s %9d %8d\n",
			n, dGets, dPuts, rdHit, retarg, p99, p99cd, defense, d.Entries, d.DirtyEntries)
		prev = cur
	}
	return nil
}

// fetchStats downloads and decodes one stats document.
func fetchStats(client *http.Client, url string) (live.StatsPayload, error) {
	var p live.StatsPayload
	resp, err := client.Get(url)
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return p, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return p, fmt.Errorf("%s: decode: %w", url, err)
	}
	return p, nil
}

// costDelta is CostHist.Diff hardened for polling: a reset that slips
// past the op-count check (counts re-accumulated above the old total
// with different buckets) makes Diff panic, which for a poller is a
// re-baseline, not a crash.
func costDelta(prev, cur probe.CostHist) (d probe.CostHist, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return cur.Diff(prev), true
}
