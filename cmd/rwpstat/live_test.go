package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
	"rwp/internal/probe"
)

// statsSeq serves a fixed sequence of stats documents, one per
// request, repeating the last — a deterministic stand-in for polling a
// live server whose counters advance between polls.
type statsSeq struct {
	docs [][]byte
	i    int
}

func (s *statsSeq) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	doc := s.docs[s.i]
	if s.i < len(s.docs)-1 {
		s.i++
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(doc)
}

// snapshots drives a real cache and captures its stats document before
// and after a burst, so the poller sees genuine cumulative payloads.
func snapshots(t *testing.T) (before, after []byte) {
	t.Helper()
	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = 128, 4, 4
	cfg.RWP.Interval = 32
	cfg.Record = true
	cfg.Coalesce = true
	cfg.NegOps = 64
	cfg.Loader = loadgen.AbsentLoader(8)
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := loadgen.New("mcf", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	loadgen.ApplyAll(c, g.Batch(2000))
	before, err = c.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	loadgen.ApplyAll(c, g.Batch(3000))
	// Eight gets of one absent key inside the burst: the first records a
	// verdict (NegInserts), the next seven are NegHits — the poller's
	// coal/neg cell for this interval reads exactly 0/7.
	for i := 0; i < 8; i++ {
		c.Get(loadgen.AbsentKey(0))
	}
	after, err = c.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	return before, after
}

// TestLivePollerDeltas: the poller baselines on the first poll and
// prints genuine interval deltas (ops, retarget split, interval p99)
// on the second.
func TestLivePollerDeltas(t *testing.T) {
	before, after := snapshots(t)
	srv := httptest.NewServer(&statsSeq{docs: [][]byte{before, after}})
	defer srv.Close()

	var out bytes.Buffer
	if err := runLive(&out, srv.URL, time.Millisecond, 2, srv.Client()); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"rd-hit", "retargets(+/-/=)", "p99-cost", "p99-c/d", "coal/neg", "baseline"} {
		if !strings.Contains(got, want) {
			t.Errorf("poller output missing %q:\n%s", want, got)
		}
	}
	// The second poll's delta line must show the burst's ops and a
	// well-formed retarget split.
	lines := strings.Split(strings.TrimSpace(got), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, "+") || !strings.Contains(last, "/=") {
		t.Errorf("delta line lacks the retarget split: %q", last)
	}
	// The interval clean/dirty p99 split: the mcf burst has both clean
	// and dirty hits, so the cell is number/number (the retarget split
	// never matches this shape — its slashes precede signs).
	if !regexp.MustCompile(`\d+/\d+`).MatchString(last) {
		t.Errorf("delta line lacks the clean/dirty p99 split: %q", last)
	}
	// The stampede-defense cell: single-goroutine traffic never
	// coalesces, and the absent-key octet in the burst scores exactly
	// seven negative-cache hits.
	if !strings.Contains(last, " 0/7 ") {
		t.Errorf("delta line lacks the 0/7 coal/neg cell: %q", last)
	}
	if strings.Contains(last, "baseline") {
		t.Errorf("second poll still printing baseline: %q", last)
	}
}

// TestLivePollerRebaseline: counters running backwards (server restart
// between polls) re-baseline instead of underflowing.
func TestLivePollerRebaseline(t *testing.T) {
	before, after := snapshots(t)
	srv := httptest.NewServer(&statsSeq{docs: [][]byte{after, before, after}})
	defer srv.Close()

	var out bytes.Buffer
	if err := runLive(&out, srv.URL, time.Millisecond, 3, srv.Client()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "re-baselining") {
		t.Errorf("backwards counters not detected:\n%s", out.String())
	}
}

// TestLiveFlagSurface: -live rejects journal arguments and surfaces
// connection failures.
func TestLiveFlagSurface(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-live", "127.0.0.1:1", "-dir", t.TempDir()}, &out, &errb); code != 2 {
		t.Errorf("-live with -dir: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-live", "127.0.0.1:1", "-polls", "1"}, &out, &errb); code != 1 {
		t.Errorf("-live against a closed port: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
}

// TestClusterCostColumns: node journals carrying a costs record render
// rd-hit-rate and p99-cost; journals from before the costs record
// render '-' in the p99 column.
func TestClusterCostColumns(t *testing.T) {
	dir := t.TempDir()
	withCosts := filepath.Join(dir, "node-c.jsonl")
	rec := probe.NewRecorder(0)
	for i := 0; i < 9; i++ {
		rec.CacheAccess(probe.AccessEvent{Level: "LLC", Class: probe.Load, Hit: true})
		rec.Costs.Observe(1)
	}
	rec.CacheAccess(probe.AccessEvent{Level: "LLC", Class: probe.Store, Hit: false})
	rec.Costs.Observe(16)
	f, err := os.Create(withCosts)
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.WriteJournal(f, probe.Header{Kind: "cluster-node", Desc: "node c"}, nil, rec); err != nil {
		t.Fatal(err)
	}
	f.Close()
	old := filepath.Join(dir, "node-o.jsonl")
	writeNodeJournal(t, old, "node o", 3)

	var out, errb bytes.Buffer
	if code := run([]string{"-journal", withCosts, "-journal", old}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"rd-hit-rate", "p99-cost", "100.0%"} {
		if !strings.Contains(got, want) {
			t.Errorf("cluster table missing %q:\n%s", want, got)
		}
	}
	// node c: 10 observations, rank(99) = 10 → cost 16. node o has no
	// costs record → '-'. The merged row unions the histograms, so it
	// also reads 16.
	nodeLine, oldLine, mergedLine := "", "", ""
	for _, line := range strings.Split(got, "\n") {
		switch {
		case strings.Contains(line, "node c"):
			nodeLine = line
		case strings.Contains(line, "node o"):
			oldLine = line
		case strings.Contains(line, "merged") && !strings.Contains(line, "note:"):
			mergedLine = line
		}
	}
	if !strings.HasSuffix(strings.TrimRight(nodeLine, " |"), "16") {
		t.Errorf("node c p99 cell wrong: %q", nodeLine)
	}
	if !strings.HasSuffix(strings.TrimRight(oldLine, " |"), "-") {
		t.Errorf("old journal p99 cell should be '-': %q", oldLine)
	}
	if !strings.HasSuffix(strings.TrimRight(mergedLine, " |"), "16") {
		t.Errorf("merged p99 cell wrong: %q", mergedLine)
	}
}
