// Command rwplint runs rwp's determinism-and-correctness static
// analysis (internal/analysis) over the module and reports findings as
//
//	file:line rule: message
//
// relative to the module root. Usage:
//
//	rwplint [-v] [-json] [-report] [packages]
//
// With no arguments or "./..." it checks every package in the module.
// Explicit directory arguments (e.g. ./internal/cache) check just those
// packages; this is also the only way to lint a testdata fixture.
//
// -json emits every finding — suppressed ones included, marked — as one
// canonical JSON object per line (keys sorted, no indentation), byte-
// stable across runs for CI annotation. -report appends a per-rule
// summary table (finding and suppression counts for every rule in the
// suite) after any findings; `make lint-report` captures it into
// results/lint_report.txt.
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 load/usage error.
// Suppress a finding with "//rwplint:allow <rule> — <reason>" on the
// offending line or the line above; -v lists suppressed findings too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"rwp/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rwplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "also list suppressed findings and their count")
	jsonOut := fs.Bool("json", false, "emit findings as canonical JSON, one object per line (suppressed included)")
	report := fs.Bool("report", false, "append a per-rule finding/suppression count table")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "rwplint: %v\n", err)
		return 2
	}

	var pkgs []*analysis.Package
	rest := fs.Args()
	wholeModule := len(rest) == 0 || (len(rest) == 1 && rest[0] == "./...")
	if wholeModule {
		pkgs, err = loader.LoadModule()
	} else {
		pkgs, err = loader.LoadDirs(rest)
	}
	if err != nil {
		fmt.Fprintf(stderr, "rwplint: %v\n", err)
		return 2
	}

	findings := analysis.Run(analysis.Default(), pkgs)
	unsuppressed := analysis.Unsuppressed(findings)
	suppressed := len(findings) - len(unsuppressed)
	switch {
	case *jsonOut:
		if err := writeJSON(stdout, loader.Root, findings); err != nil {
			fmt.Fprintf(stderr, "rwplint: %v\n", err)
			return 2
		}
	default:
		for _, f := range unsuppressed {
			fmt.Fprintf(stdout, "%s:%d %s: %s\n", relPath(loader.Root, f.Pos.Filename), f.Pos.Line, f.Rule, f.Message)
		}
		if *verbose {
			for _, f := range findings {
				if f.Suppressed {
					fmt.Fprintf(stdout, "%s:%d %s: suppressed: %s\n", relPath(loader.Root, f.Pos.Filename), f.Pos.Line, f.Rule, f.Message)
				}
			}
			fmt.Fprintf(stdout, "rwplint: %d packages, %d findings (%d suppressed)\n", len(pkgs), len(findings), suppressed)
		}
	}
	if *report {
		writeReport(stdout, len(pkgs), findings)
	}
	if len(unsuppressed) > 0 {
		return 1
	}
	return 0
}

// jsonFinding is one finding in -json output. Fields are declared in
// alphabetical order so the canonical encoding has sorted keys; no
// position or message field is optional, making the byte stream stable
// across runs on the same tree.
type jsonFinding struct {
	Col        int    `json:"col"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Message    string `json:"message"`
	Rule       string `json:"rule"`
	Suppressed bool   `json:"suppressed"`
}

// writeJSON emits every finding — suppressed ones marked, not hidden —
// as one canonical JSON object per line, in analysis.Run's sorted
// order.
func writeJSON(w io.Writer, root string, findings []analysis.Finding) error {
	enc := json.NewEncoder(w)
	for _, f := range findings {
		jf := jsonFinding{
			Col:        f.Pos.Column,
			File:       filepath.ToSlash(relPath(root, f.Pos.Filename)),
			Line:       f.Pos.Line,
			Message:    f.Message,
			Rule:       f.Rule,
			Suppressed: f.Suppressed,
		}
		if err := enc.Encode(jf); err != nil {
			return err
		}
	}
	return nil
}

// writeReport prints the per-rule finding/suppression count table. All
// suite rules appear, zeros included, so a diff of two reports shows
// rules going quiet as clearly as rules firing.
func writeReport(w io.Writer, pkgs int, findings []analysis.Finding) {
	unByRule := map[string]int{}
	supByRule := map[string]int{}
	rules := map[string]bool{"directive": true}
	for _, a := range analysis.Default() {
		rules[a.Name] = true
	}
	for _, f := range findings {
		rules[f.Rule] = true
		if f.Suppressed {
			supByRule[f.Rule]++
		} else {
			unByRule[f.Rule]++
		}
	}
	names := make([]string, 0, len(rules))
	for r := range rules {
		names = append(names, r)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "rwplint report: %d packages, %d findings (%d suppressed)\n",
		pkgs, len(findings), len(findings)-len(analysis.Unsuppressed(findings)))
	fmt.Fprintf(w, "%-12s %9s %10s\n", "rule", "findings", "suppressed")
	for _, r := range names {
		fmt.Fprintf(w, "%-12s %9d %10d\n", r, unByRule[r], supByRule[r])
	}
}

// relPath renders file positions relative to the module root (or the
// working directory for files outside it) for stable, short output.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return path
}
