// Command rwplint runs rwp's determinism-and-correctness static
// analysis (internal/analysis) over the module and reports findings as
//
//	file:line rule: message
//
// relative to the module root. Usage:
//
//	rwplint [-v] [packages]
//
// With no arguments or "./..." it checks every package in the module.
// Explicit directory arguments (e.g. ./internal/cache) check just those
// packages; this is also the only way to lint a testdata fixture.
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 load/usage error.
// Suppress a finding with "//rwplint:allow <rule> — <reason>" on the
// offending line or the line above; -v lists suppressed findings too.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rwp/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "also list suppressed findings and their count")
	flag.Parse()

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwplint: %v\n", err)
		os.Exit(2)
	}

	var pkgs []*analysis.Package
	args := flag.Args()
	wholeModule := len(args) == 0 || (len(args) == 1 && args[0] == "./...")
	if wholeModule {
		pkgs, err = loader.LoadModule()
	} else {
		pkgs, err = loader.LoadDirs(args)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwplint: %v\n", err)
		os.Exit(2)
	}

	findings := analysis.Run(analysis.Default(), pkgs)
	unsuppressed := analysis.Unsuppressed(findings)
	suppressed := len(findings) - len(unsuppressed)
	for _, f := range unsuppressed {
		fmt.Printf("%s:%d %s: %s\n", relPath(loader.Root, f.Pos.Filename), f.Pos.Line, f.Rule, f.Message)
	}
	if *verbose {
		for _, f := range findings {
			if f.Suppressed {
				fmt.Printf("%s:%d %s: suppressed: %s\n", relPath(loader.Root, f.Pos.Filename), f.Pos.Line, f.Rule, f.Message)
			}
		}
		fmt.Printf("rwplint: %d packages, %d findings (%d suppressed)\n", len(pkgs), len(findings), suppressed)
	}
	if len(unsuppressed) > 0 {
		os.Exit(1)
	}
}

// relPath renders file positions relative to the module root (or the
// working directory for files outside it) for stable, short output.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return path
}
