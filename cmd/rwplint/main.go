// Command rwplint runs rwp's determinism-and-correctness static
// analysis (internal/analysis) over the module and reports findings as
//
//	file:line rule: message
//
// relative to the module root. Usage:
//
//	rwplint [-v] [packages]
//
// With no arguments or "./..." it checks every package in the module.
// Explicit directory arguments (e.g. ./internal/cache) check just those
// packages; this is also the only way to lint a testdata fixture.
//
// Exit status: 0 clean, 1 unsuppressed findings, 2 load/usage error.
// Suppress a finding with "//rwplint:allow <rule> — <reason>" on the
// offending line or the line above; -v lists suppressed findings too.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rwp/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rwplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "also list suppressed findings and their count")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "rwplint: %v\n", err)
		return 2
	}

	var pkgs []*analysis.Package
	rest := fs.Args()
	wholeModule := len(rest) == 0 || (len(rest) == 1 && rest[0] == "./...")
	if wholeModule {
		pkgs, err = loader.LoadModule()
	} else {
		pkgs, err = loader.LoadDirs(rest)
	}
	if err != nil {
		fmt.Fprintf(stderr, "rwplint: %v\n", err)
		return 2
	}

	findings := analysis.Run(analysis.Default(), pkgs)
	unsuppressed := analysis.Unsuppressed(findings)
	suppressed := len(findings) - len(unsuppressed)
	for _, f := range unsuppressed {
		fmt.Fprintf(stdout, "%s:%d %s: %s\n", relPath(loader.Root, f.Pos.Filename), f.Pos.Line, f.Rule, f.Message)
	}
	if *verbose {
		for _, f := range findings {
			if f.Suppressed {
				fmt.Fprintf(stdout, "%s:%d %s: suppressed: %s\n", relPath(loader.Root, f.Pos.Filename), f.Pos.Line, f.Rule, f.Message)
			}
		}
		fmt.Fprintf(stdout, "rwplint: %d packages, %d findings (%d suppressed)\n", len(pkgs), len(findings), suppressed)
	}
	if len(unsuppressed) > 0 {
		return 1
	}
	return 0
}

// relPath renders file positions relative to the module root (or the
// working directory for files outside it) for stable, short output.
func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) {
		return rel
	}
	return path
}
