package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// The working directory of these tests is cmd/rwplint, so the fixture
// packages that violate the rules sit two levels up.
const (
	fixtureDir = "../../internal/analysis/testdata/stats"
	// locksDir violates the concurrency/hot-path rules: lockheld,
	// lockpair, hotalloc.
	locksDir = "../../internal/analysis/testdata/locks"
)

func TestRunFindingsOnFixture(t *testing.T) {
	var out, errbuf bytes.Buffer
	if code := run([]string{fixtureDir}, &out, &errbuf); code != 1 {
		t.Fatalf("run(fixture) = %d, want 1; stderr: %s", code, errbuf.String())
	}
	s := out.String()
	for _, rule := range []string{"norand", "nowallclock", "maporder", "floateq", "ctrwidth"} {
		if !strings.Contains(s, " "+rule+": ") {
			t.Errorf("fixture finding for rule %s missing:\n%s", rule, s)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if !strings.HasPrefix(line, "internal/analysis/testdata/stats/bad.go:") {
			t.Errorf("finding line not rooted at the module: %q", line)
		}
	}
}

func TestRunFindingsOnLocksFixture(t *testing.T) {
	var out, errbuf bytes.Buffer
	if code := run([]string{locksDir}, &out, &errbuf); code != 1 {
		t.Fatalf("run(locks fixture) = %d, want 1; stderr: %s", code, errbuf.String())
	}
	s := out.String()
	for _, rule := range []string{"lockheld", "lockpair", "hotalloc"} {
		if !strings.Contains(s, " "+rule+": ") {
			t.Errorf("fixture finding for rule %s missing:\n%s", rule, s)
		}
	}
}

func TestRunJSONByteStable(t *testing.T) {
	var first, second, errbuf bytes.Buffer
	if code := run([]string{"-json", locksDir}, &first, &errbuf); code != 1 {
		t.Fatalf("run(-json locks fixture) = %d, want 1; stderr: %s", code, errbuf.String())
	}
	if code := run([]string{"-json", locksDir}, &second, &errbuf); code != 1 {
		t.Fatalf("second run(-json) = %d, want 1", code)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("-json output not byte-stable across runs:\n--- first\n%s--- second\n%s", first.String(), second.String())
	}

	lines := strings.Split(strings.TrimSpace(first.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected at least one finding per rule, got %d JSON lines", len(lines))
	}
	var prev struct {
		file      string
		line, col int
	}
	for i, l := range lines {
		// Canonical form: keys in alphabetical order, one object per
		// line, no indentation.
		if !strings.HasPrefix(l, `{"col":`) || !strings.Contains(l, `"file":`) {
			t.Errorf("line %d not canonical (want alphabetical keys starting with col): %q", i, l)
		}
		var f struct {
			Col        int    `json:"col"`
			File       string `json:"file"`
			Line       int    `json:"line"`
			Message    string `json:"message"`
			Rule       string `json:"rule"`
			Suppressed bool   `json:"suppressed"`
		}
		if err := json.Unmarshal([]byte(l), &f); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, l)
		}
		if f.File == "" || f.Line == 0 || f.Rule == "" || f.Message == "" {
			t.Errorf("line %d missing fields: %+v", i, f)
		}
		if i > 0 && f.File == prev.file && (f.Line < prev.line || (f.Line == prev.line && f.Col < prev.col)) {
			t.Errorf("findings not sorted at line %d: %d:%d after %d:%d", i, f.Line, f.Col, prev.line, prev.col)
		}
		prev.file, prev.line, prev.col = f.File, f.Line, f.Col
	}
}

func TestRunJSONIncludesSuppressed(t *testing.T) {
	// The live package carries justified suppressions; -json must emit
	// them marked, not hide them, while still exiting 0.
	var out, errbuf bytes.Buffer
	if code := run([]string{"-json", "../../internal/live"}, &out, &errbuf); code != 0 {
		t.Fatalf("run(-json internal/live) = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errbuf.String())
	}
	if !strings.Contains(out.String(), `"suppressed":true`) {
		t.Errorf("-json output on internal/live should contain suppressed findings:\n%s", out.String())
	}
}

func TestRunReport(t *testing.T) {
	var out, errbuf bytes.Buffer
	if code := run([]string{"-report", locksDir}, &out, &errbuf); code != 1 {
		t.Fatalf("run(-report locks fixture) = %d, want 1; stderr: %s", code, errbuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "rwplint report:") {
		t.Fatalf("report header missing:\n%s", s)
	}
	// Every suite rule appears, zeros included; the violated ones show
	// non-zero finding counts.
	for _, rule := range []string{"norand", "nowallclock", "maporder", "floateq", "ctrwidth", "probesafe", "lockheld", "lockpair", "hotalloc", "directive"} {
		if !strings.Contains(s, rule) {
			t.Errorf("report missing rule row %q:\n%s", rule, s)
		}
	}
	for _, row := range strings.Split(s, "\n") {
		fields := strings.Fields(row)
		if len(fields) == 3 && fields[0] == "lockheld" && fields[1] == "0" {
			t.Errorf("lockheld row shows zero findings on the locks fixture:\n%s", s)
		}
	}
}

func TestRunCleanPackage(t *testing.T) {
	var out, errbuf bytes.Buffer
	if code := run([]string{"../../internal/cache"}, &out, &errbuf); code != 0 {
		t.Fatalf("run(internal/cache) = %d\nstdout: %s\nstderr: %s", code, out.String(), errbuf.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package produced findings:\n%s", out.String())
	}
}

func TestRunVerbose(t *testing.T) {
	// The live package suppresses nothing today, but -v must always
	// print the summary line, so lint a clean package verbosely.
	var out, errbuf bytes.Buffer
	if code := run([]string{"-v", "../../internal/live"}, &out, &errbuf); code != 0 {
		t.Fatalf("run(-v internal/live) = %d\nstdout: %s\nstderr: %s", code, out.String(), errbuf.String())
	}
	if !strings.Contains(out.String(), "rwplint:") || !strings.Contains(out.String(), "packages") {
		t.Errorf("-v summary line missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errbuf bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errbuf); code != 2 {
		t.Errorf("bad flag: run = %d, want 2", code)
	}
	out.Reset()
	errbuf.Reset()
	if code := run([]string{"/nonexistent-dir-xyz"}, &out, &errbuf); code != 2 {
		t.Errorf("bad dir: run = %d, want 2 (stderr: %s)", code, errbuf.String())
	}
}

func TestRelPath(t *testing.T) {
	root := "/mod"
	if got := relPath(root, "/mod/internal/x.go"); got != filepath.Join("internal", "x.go") {
		t.Errorf("relPath inside root = %q", got)
	}
	if got := relPath(root, "/elsewhere/y.go"); got != filepath.Join("..", "elsewhere", "y.go") && got != "/elsewhere/y.go" {
		// Either a clean relative path or the original is acceptable;
		// what matters is that it never fabricates an absolute-looking
		// relative path.
		t.Errorf("relPath outside root = %q", got)
	}
}
