package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// The working directory of these tests is cmd/rwplint, so the fixture
// package that violates every rule sits two levels up.
const fixtureDir = "../../internal/analysis/testdata/stats"

func TestRunFindingsOnFixture(t *testing.T) {
	var out, errbuf bytes.Buffer
	if code := run([]string{fixtureDir}, &out, &errbuf); code != 1 {
		t.Fatalf("run(fixture) = %d, want 1; stderr: %s", code, errbuf.String())
	}
	s := out.String()
	for _, rule := range []string{"norand", "nowallclock", "maporder", "floateq", "ctrwidth"} {
		if !strings.Contains(s, " "+rule+": ") {
			t.Errorf("fixture finding for rule %s missing:\n%s", rule, s)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if !strings.HasPrefix(line, "internal/analysis/testdata/stats/bad.go:") {
			t.Errorf("finding line not rooted at the module: %q", line)
		}
	}
}

func TestRunCleanPackage(t *testing.T) {
	var out, errbuf bytes.Buffer
	if code := run([]string{"../../internal/cache"}, &out, &errbuf); code != 0 {
		t.Fatalf("run(internal/cache) = %d\nstdout: %s\nstderr: %s", code, out.String(), errbuf.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean package produced findings:\n%s", out.String())
	}
}

func TestRunVerbose(t *testing.T) {
	// The live package suppresses nothing today, but -v must always
	// print the summary line, so lint a clean package verbosely.
	var out, errbuf bytes.Buffer
	if code := run([]string{"-v", "../../internal/live"}, &out, &errbuf); code != 0 {
		t.Fatalf("run(-v internal/live) = %d\nstdout: %s\nstderr: %s", code, out.String(), errbuf.String())
	}
	if !strings.Contains(out.String(), "rwplint:") || !strings.Contains(out.String(), "packages") {
		t.Errorf("-v summary line missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errbuf bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errbuf); code != 2 {
		t.Errorf("bad flag: run = %d, want 2", code)
	}
	out.Reset()
	errbuf.Reset()
	if code := run([]string{"/nonexistent-dir-xyz"}, &out, &errbuf); code != 2 {
		t.Errorf("bad dir: run = %d, want 2 (stderr: %s)", code, errbuf.String())
	}
}

func TestRelPath(t *testing.T) {
	root := "/mod"
	if got := relPath(root, "/mod/internal/x.go"); got != filepath.Join("internal", "x.go") {
		t.Errorf("relPath inside root = %q", got)
	}
	if got := relPath(root, "/elsewhere/y.go"); got != filepath.Join("..", "elsewhere", "y.go") && got != "/elsewhere/y.go" {
		// Either a clean relative path or the original is acceptable;
		// what matters is that it never fabricates an absolute-looking
		// relative path.
		t.Errorf("relPath outside root = %q", got)
	}
}
