package main

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"rwp/internal/live"
	"rwp/internal/snap"
)

// This file is rwpserve's warm-restart surface: -restore loads a
// snapshot before serving (falling back to a cold start on any
// defect), -snapshot writes one at graceful shutdown, and -snap-every
// adds periodic checkpoints clocked by data-op counts — never
// wall-clock, so checkpoint timing is as deterministic as everything
// else driven by the op stream.

// restoreCache warm-starts c from the snapshot at path. Any failure —
// missing file, corrupt bytes, geometry mismatch — is reported to the
// caller, which logs it and keeps the cold cache: a bad snapshot must
// never take the server down or leave partial state (RestoreSnapshot
// validates everything before mutating anything).
func restoreCache(c *live.Cache, path string) error {
	s, err := snap.ReadFile(path)
	if err != nil {
		return err
	}
	return c.RestoreSnapshot(s)
}

// snapCache interposes on the serve-mode data path to checkpoint the
// cache every `every` data ops. The embedded cache keeps the full
// surface (Config, StatsJSON, and the proto.RangeBackend management
// ops) promoted, so the wrapper drops into every place *live.Cache
// goes — drive.Handler and proto.ServeConn both serve it unchanged.
type snapCache struct {
	*live.Cache
	path   string
	every  uint64
	stderr io.Writer

	ops  atomic.Uint64
	busy atomic.Bool   // one checkpoint in flight at a time
	errs atomic.Uint64 // failed checkpoint writes (surfaced in tests)
	wg   sync.WaitGroup
}

func newSnapCache(c *live.Cache, path string, every uint64, stderr io.Writer) *snapCache {
	return &snapCache{Cache: c, path: path, every: every, stderr: stderr}
}

func (s *snapCache) Get(key string) ([]byte, bool) {
	v, hit := s.Cache.Get(key)
	s.tick()
	return v, hit
}

func (s *snapCache) Put(key string, val []byte) bool {
	inserted := s.Cache.Put(key, val)
	s.tick()
	return inserted
}

// tick counts one data op and launches a checkpoint at every interval
// boundary. Checkpoints are single-flight: if the previous write is
// still running when the next boundary passes, the boundary is skipped
// rather than queued — a slow disk must not pile up snapshot encodes.
func (s *snapCache) tick() {
	if s.every == 0 {
		return
	}
	if n := s.ops.Add(1); n%s.every == 0 {
		s.checkpoint()
	}
}

func (s *snapCache) checkpoint() {
	if !s.busy.CompareAndSwap(false, true) {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.busy.Store(false)
		// Snapshot() locks one shard at a time, so serving continues
		// while the checkpoint is captured; WriteFile is atomic
		// (temp+rename), so a crash mid-write keeps the previous one.
		if err := snap.WriteFile(s.path, s.Cache.Snapshot()); err != nil {
			s.errs.Add(1)
			fmt.Fprintf(s.stderr, "rwpserve: checkpoint %s: %v\n", s.path, err)
		}
	}()
}

// drain waits for any in-flight checkpoint; the shutdown snapshot is
// written after this, so it is always the file's final content.
func (s *snapCache) drain() { s.wg.Wait() }
