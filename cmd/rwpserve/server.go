package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"rwp/internal/live"
	"rwp/internal/live/drive"
	"rwp/internal/live/proto"
	"rwp/internal/snap"
)

// tcpServer accepts binary-protocol connections and serves each with
// proto.ServeConn until Shutdown. *live.Cache satisfies proto.Backend
// directly — Get/Put pass through and StatsJSON renders the exact
// /stats HTTP body, which is what makes the transports byte-comparable.
type tcpServer struct {
	ln     net.Listener
	b      proto.Backend
	stderr io.Writer

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup // accept loop + one per live connection
}

// newTCPServer wraps an already-bound listener.
func newTCPServer(ln net.Listener, b proto.Backend, stderr io.Writer) *tcpServer {
	return &tcpServer{ln: ln, b: b, stderr: stderr, conns: map[net.Conn]struct{}{}}
}

// serve runs the accept loop until the listener closes. It returns nil
// after a Shutdown-initiated close.
func (s *tcpServer) serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			defer func() {
				// Defense in depth: a bug in the protocol loop must
				// cost one connection, not the process.
				if p := recover(); p != nil {
					fmt.Fprintf(s.stderr, "rwpserve: tcp %s: panic: %v\n", conn.RemoteAddr(), p)
				}
			}()
			err := proto.ServeConn(conn, s.b)
			if err != nil && !errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				// Protocol violations and transport failures are peer
				// problems, not server state: log and move on.
				fmt.Fprintf(s.stderr, "rwpserve: tcp %s: %v\n", conn.RemoteAddr(), err)
			}
		}()
	}
}

// shutdown stops accepting, expires every connection's read deadline
// so loops blocked at a frame boundary exit (in-flight responses still
// flush — the framed-protocol analogue of http.Server closing idle
// connections), then waits for the drain until ctx expires, after
// which the stragglers are closed hard.
func (s *tcpServer) shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.ln.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			// Hard-close of stragglers at shutdown; the lock only guards
			// the conns map, and Close on a TCP conn does not block.
			//rwplint:allow lockheld — shutdown hard-close; nothing else contends for s.mu anymore
			conn.Close() // unblocks ServeConn reads; order irrelevant
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// shutdownNow drains with an already-expired deadline: close listener
// and connections immediately (test/bench teardown, nothing to drain
// gracefully).
func (s *tcpServer) shutdownNow() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.mu.Lock()
	for conn := range s.conns {
		// Teardown hard-close; the lock only guards the conns map, and
		// Close on a TCP conn does not block.
		//rwplint:allow lockheld — teardown hard-close; nothing else contends for s.mu anymore
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// shutdownTimeout bounds the graceful drain of both servers.
const shutdownTimeout = 5 * time.Second

// serve listens on httpAddr (HTTP: /get /put /stats) and, when tcpAddr
// is non-empty, on tcpAddr (binary protocol), then runs both servers
// until ctx is cancelled (SIGINT/SIGTERM in main) or either listener
// fails. Shutdown is shared and ordered: both listeners stop accepting,
// then both drain in-flight work within shutdownTimeout.
//
// When snapPath is non-empty a state snapshot is written there after
// the graceful drain (so it reflects every answered request), and —
// with snapEvery > 0 — checkpointed every snapEvery data ops along the
// way via the snapCache wrapper on the op path.
func serve(ctx context.Context, httpAddr, tcpAddr string, c *live.Cache, snapPath string, snapEvery uint64, stdout, stderr io.Writer) error {
	ln, err := net.Listen("tcp", httpAddr)
	if err != nil {
		return err
	}
	cfg := c.Config()
	fmt.Fprintf(stdout, "rwpserve: policy=%s sets=%d ways=%d shards=%d listening on http://%s\n",
		cfg.Policy, cfg.Sets, cfg.Ways, cfg.Shards, ln.Addr())

	// Both transports serve the same backend value, so op-count
	// checkpoints see HTTP and binary traffic alike.
	var backend drive.Backend = c
	var sc *snapCache
	if snapPath != "" {
		sc = newSnapCache(c, snapPath, snapEvery, stderr)
		backend = sc
	}

	var tsrv *tcpServer
	errc := make(chan error, 2)
	if tcpAddr != "" {
		tln, err := net.Listen("tcp", tcpAddr)
		if err != nil {
			ln.Close()
			return err
		}
		fmt.Fprintf(stdout, "rwpserve: binary protocol listening on tcp://%s\n", tln.Addr())
		tsrv = newTCPServer(tln, backend, stderr)
		go func() { errc <- tsrv.serve() }()
	}

	srv := &http.Server{Handler: drive.Handler(backend)}
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// One server failed (or, for TCP, exited): tear the other down.
		sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
		defer cancel()
		srv.Shutdown(sctx)
		if tsrv != nil {
			tsrv.shutdown(sctx)
		}
		if sc != nil {
			sc.drain() // no final snapshot on a failure exit
		}
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "rwpserve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	// Ordering: the HTTP drain first (it owns request lifecycles), the
	// binary listener second; both share the one deadline.
	if err := srv.Shutdown(sctx); err != nil {
		if tsrv != nil {
			tsrv.shutdown(sctx)
		}
		return err
	}
	if tsrv != nil {
		if err := tsrv.shutdown(sctx); err != nil {
			return err
		}
		<-errc // tcp serve() returns nil after shutdown
	}
	<-errc // http Serve returns ErrServerClosed after Shutdown
	if snapPath != "" {
		// After the full drain: the shutdown snapshot reflects every
		// answered request, and no checkpoint can race the final write.
		sc.drain()
		if err := snap.WriteFile(snapPath, c.Snapshot()); err != nil {
			return fmt.Errorf("shutdown snapshot: %w", err)
		}
		fmt.Fprintf(stdout, "rwpserve: snapshot written to %s\n", snapPath)
	}
	return nil
}
