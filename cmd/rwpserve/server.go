package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"rwp/internal/live"
	"rwp/internal/probe"
)

// statsPayload is the /stats JSON document. Every field is an
// order-independent aggregate, so the payload is shard-count invariant
// for a deterministic operation stream.
type statsPayload struct {
	Policy   string     `json:"policy"`
	Sets     int        `json:"sets"`
	Ways     int        `json:"ways"`
	Capacity int        `json:"capacity"`
	Stats    live.Stats `json:"stats"`
	Probe    *probeView `json:"probe,omitempty"`
}

// probeView is the merged probe-recorder section.
type probeView struct {
	Load       probe.ClassCounters `json:"load"`
	Store      probe.ClassCounters `json:"store"`
	EvictClean uint64              `json:"evictClean"`
	EvictDirty uint64              `json:"evictDirty"`
}

// Note: Shards is deliberately absent from the payload — it is a lock
// layout detail, and keeping it out lets the determinism smoke compare
// payloads across shard counts byte for byte.
func snapshot(c *live.Cache) statsPayload {
	cfg := c.Config()
	p := statsPayload{
		Policy:   cfg.Policy,
		Sets:     cfg.Sets,
		Ways:     cfg.Ways,
		Capacity: c.Capacity(),
		Stats:    c.Stats(),
	}
	if pr := c.ProbeStats(); pr != nil {
		p.Probe = &probeView{
			Load:       pr.Classes[probe.Load],
			Store:      pr.Classes[probe.Store],
			EvictClean: pr.EvictClean,
			EvictDirty: pr.EvictDirty,
		}
	}
	return p
}

// writeStatsJSON renders the /stats payload (also the -selftest output).
func writeStatsJSON(w io.Writer, c *live.Cache) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snapshot(c))
}

// newHandler wires the cache's HTTP surface.
func newHandler(c *live.Cache) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/get", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "" {
			http.Error(w, "missing key parameter", http.StatusBadRequest)
			return
		}
		v, hit := c.Get(key)
		switch {
		case hit:
			w.Header().Set("X-Cache", "hit")
		case v != nil:
			w.Header().Set("X-Cache", "fill") // loader backfill
		default:
			w.Header().Set("X-Cache", "miss")
			http.Error(w, "key not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(v)
	})
	mux.HandleFunc("/put", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut && r.Method != http.MethodPost {
			http.Error(w, "use PUT or POST", http.StatusMethodNotAllowed)
			return
		}
		key := r.URL.Query().Get("key")
		if key == "" {
			http.Error(w, "missing key parameter", http.StatusBadRequest)
			return
		}
		val, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if c.Put(key, val) {
			w.Header().Set("X-Cache", "insert")
		} else {
			w.Header().Set("X-Cache", "overwrite")
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := writeStatsJSON(w, c); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// serve listens on addr and runs the HTTP server until SIGINT/SIGTERM,
// then drains in-flight requests via graceful shutdown.
func serve(addr string, c *live.Cache, stdout, stderr io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	cfg := c.Config()
	fmt.Fprintf(stdout, "rwpserve: policy=%s sets=%d ways=%d shards=%d listening on http://%s\n",
		cfg.Policy, cfg.Sets, cfg.Ways, cfg.Shards, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Handler: newHandler(c)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "rwpserve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return err
	}
	<-errc // Serve returns http.ErrServerClosed after Shutdown
	return nil
}
