package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rwp/internal/live"
	"rwp/internal/live/drive"
	"rwp/internal/live/loadgen"
	"rwp/internal/live/proto"
)

// diffCache builds the fixed cache geometry every differential test
// replays into — one constructor so the only variable is the transport.
func diffCache(t *testing.T) *live.Cache {
	t.Helper()
	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = 128, 4, 4
	cfg.Record = true
	cfg.RWP.Interval = 32
	cfg.Loader = loadgen.Loader(8)
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// replayThrough runs the canonical stream through one transport and
// returns the stats document fetched through that same transport.
func replayThrough(t *testing.T, transport string, batch, depth, n int) []byte {
	t.Helper()
	g, err := loadgen.New("mcf", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := drive.New(transport, diffCache(t), batch, depth)
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	if err := tgt.Replay(g.Batch(n)); err != nil {
		t.Fatalf("%s replay: %v", transport, err)
	}
	data, err := tgt.StatsJSON()
	if err != nil {
		t.Fatalf("%s stats: %v", transport, err)
	}
	return data
}

// TestTransportEquivalence is the tentpole's differential proof: the
// same single-goroutine loadgen stream produces byte-identical stats
// JSON whether it travels in process, over HTTP request-per-op, or
// over the binary protocol in batched pipelined frames.
func TestTransportEquivalence(t *testing.T) {
	const n = 5000
	base := replayThrough(t, "direct", 0, 0, n)
	for _, want := range []string{"\"Retargets\"", "\"RetargetUp\"", "\"RetargetDown\"", "\"RetargetSame\"", "\"CostHist\""} {
		if !strings.Contains(string(base), want) {
			t.Fatalf("baseline stats missing %s:\n%s", want, base)
		}
	}
	for _, tc := range []struct {
		transport    string
		batch, depth int
	}{
		{"http", 0, 0},
		{"tcp", 1, 1},   // degenerate: one op per frame, one frame per flush
		{"tcp", 32, 8},  // the default-ish batched pipelined shape
		{"tcp", 256, 2}, // big frames, shallow pipeline
	} {
		got := replayThrough(t, tc.transport, tc.batch, tc.depth, n)
		if !bytes.Equal(got, base) {
			t.Errorf("%s (batch=%d depth=%d) stats differ from direct:\n%s\nvs\n%s",
				tc.transport, tc.batch, tc.depth, got, base)
		}
	}
}

// TestPipelineDepthInvariance pins the satellite criterion verbatim:
// identical stats across TCP pipelining depths 1, 8, and 64.
func TestPipelineDepthInvariance(t *testing.T) {
	const n = 5000
	base := replayThrough(t, "tcp", 16, 1, n)
	for _, depth := range []int{8, 64} {
		if got := replayThrough(t, "tcp", 16, depth, n); !bytes.Equal(got, base) {
			t.Errorf("depth %d stats differ from depth 1:\n%s\nvs\n%s", depth, got, base)
		}
	}
}

// syncBuf is a mutex-guarded buffer: the serve goroutine writes while
// the test polls.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitAddr polls out for a "scheme://host:port" token.
func waitAddr(t *testing.T, out *syncBuf, scheme string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, f := range strings.Fields(out.String()) {
			if rest, ok := strings.CutPrefix(f, scheme+"://"); ok {
				return rest
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no %s:// address in output:\n%s", scheme, out.String())
	return ""
}

// TestServeTCPEndToEnd boots the real run() with both listeners, talks
// to each, proves the STATS frame equals the /stats body byte for
// byte, then shuts the whole thing down via context cancel — the
// production -tcp path end to end.
func TestServeTCPEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuf
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-tcp", "127.0.0.1:0",
			"-sets", "64", "-ways", "4", "-shards", "4"}, &out, &errb)
	}()
	httpAddr := waitAddr(t, &out, "http")
	tcpAddr := waitAddr(t, &out, "tcp")

	conn, err := net.Dial("tcp", tcpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cli := proto.NewClient(conn)

	if inserted, err := cli.Put("e2e", []byte("v1")); err != nil || !inserted {
		t.Fatalf("Put = %v, %v", inserted, err)
	}
	res, err := cli.Get("e2e")
	if err != nil || res.Status != proto.StatusHit || string(res.Value) != "v1" {
		t.Fatalf("Get = %+v, %v", res, err)
	}
	if echo, err := cli.Ping([]byte("ping-me")); err != nil || string(echo) != "ping-me" {
		t.Fatalf("Ping = %q, %v", echo, err)
	}

	binStats, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + httpAddr + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	httpStats, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(binStats, httpStats) {
		t.Fatalf("binary STATS differs from HTTP /stats:\n%s\nvs\n%s", binStats, httpStats)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d, stderr: %s", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after cancel")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing shutdown line in output:\n%s", out.String())
	}
}

// TestServeListenErrors covers the bind-failure paths for both
// listeners.
func TestServeListenErrors(t *testing.T) {
	// Occupy a port so serve's bind fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	busy := ln.Addr().String()

	c := diffCache(t)
	var out, errb bytes.Buffer
	if err := serve(context.Background(), busy, "", c, "", 0, &out, &errb); err == nil {
		t.Error("serve on a busy HTTP port: no error")
	}
	if err := serve(context.Background(), "127.0.0.1:0", busy, c, "", 0, &out, &errb); err == nil {
		t.Error("serve on a busy TCP port: no error")
	}
}

// TestTCPServerLogsBadPeer: a peer that sends garbage gets its error
// logged and the connection closed, and the server keeps serving.
func TestTCPServerLogsBadPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var errb syncBuf
	tsrv := newTCPServer(ln, diffCache(t), &errb)
	go tsrv.serve()
	defer tsrv.shutdownNow()

	bad, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// The server replies with an ERR frame and closes.
	if _, err := io.ReadAll(bad); err != nil {
		t.Fatal(err)
	}
	bad.Close()

	// A well-formed client still works on a fresh connection.
	good, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if _, err := proto.NewClient(good).Ping([]byte("ok")); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(errb.String(), "rwpserve: tcp") {
		if time.Now().After(deadline) {
			t.Fatalf("no peer-error log line, stderr:\n%s", errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShutdownClosesIdleConns: an idle client (blocked server read at
// a frame boundary) must not hold up a graceful shutdown — the drain
// finishes well inside the deadline and returns nil.
func TestShutdownClosesIdleConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tsrv := newTCPServer(ln, diffCache(t), io.Discard)
	go tsrv.serve()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A round trip guarantees the connection is registered and idle.
	if _, err := proto.NewClient(conn).Ping(nil); err != nil {
		t.Fatal(err)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tsrv.shutdown(sctx); err != nil {
		t.Fatalf("shutdown with an idle conn = %v, want nil", err)
	}
}

// fakeListener hands out pre-made connections — a way to feed the
// server a conn whose read deadline does not work.
type fakeListener struct {
	conns  chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func newFakeListener() *fakeListener {
	return &fakeListener{conns: make(chan net.Conn, 1), closed: make(chan struct{})}
}

func (l *fakeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *fakeListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

func (l *fakeListener) Addr() net.Addr { return fakeAddr{} }

// noDeadlineConn swallows read deadlines, simulating a straggler the
// graceful phase cannot unblock.
type noDeadlineConn struct{ net.Conn }

func (noDeadlineConn) SetReadDeadline(time.Time) error { return nil }

// TestShutdownForcesStragglers: a connection the deadline nudge cannot
// unblock is force-closed once the drain deadline passes, and shutdown
// reports the deadline error.
func TestShutdownForcesStragglers(t *testing.T) {
	ln := newFakeListener()
	tsrv := newTCPServer(ln, diffCache(t), io.Discard)
	go tsrv.serve()

	client, server := net.Pipe()
	defer client.Close()
	ln.conns <- noDeadlineConn{server}
	// Half a frame: the server blocks in ReadFrame waiting for the
	// rest. net.Pipe writes are synchronous, so returning from Write
	// means the server loop has consumed the bytes and is registered.
	if _, err := client.Write([]byte{proto.Magic0, proto.Magic1}); err != nil {
		t.Fatal(err)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := tsrv.shutdown(sctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown = %v, want context.DeadlineExceeded", err)
	}
}
