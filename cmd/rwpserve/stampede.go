package main

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
)

// The stampede bench scores the defenses in internal/live/fill.go by
// the only number a backend operator cares about: how many times the
// Loader was invoked. Three scenarios, each run undefended and
// defended:
//
//	flash-storm   stampedeStorms rounds; each round, `clients`
//	              goroutines all Get the same cold key at once. The
//	              loader refuses to return until every client of the
//	              round has missed, so the storm is total by
//	              construction and both legs' counts are exact:
//	              undefended clients*storms, coalesced storms.
//	absent-flood  the same synchronized crowd, but every round hammers
//	              one key the backend does not have. Absences never
//	              install (a look-aside cache stores values, not
//	              absences), so undefended every Get of the whole run is
//	              a backend call; with coalescing + negative caching the
//	              first round's leader makes the only one and the
//	              verdict answers everything after.
//	scan-neg      a single-goroutine adv:scan flood: a cyclic sweep of
//	              the absent keyspace. Negative caching answers revisits
//	              inside the verdict window locally; only window expiry
//	              goes back to the backend.
//
// Every leg ends with CheckInvariants and the stampede conservation
// law; the bench then gates — defended strictly below undefended in
// every scenario — and errors out otherwise, so `make bench-stampede`
// is a regression test, not just a report. All six counts are
// deterministic (the storms by rendezvous, the scan by construction),
// so the recorded results file is stable run to run.
const stampedeStorms = 32

// stampedeRow is one scenario's undefended-vs-defended comparison.
type stampedeRow struct {
	scenario  string
	off, on   uint64 // backend Loader calls
	misses    uint64 // defended-leg Get misses, for context
	reduction float64
}

func runStampedeBench(w io.Writer, base live.Config, clients, scanOps, valSize int) error {
	if clients < 2 {
		return fmt.Errorf("stampede bench needs at least 2 clients, got %d", clients)
	}
	if scanOps < 1 {
		return fmt.Errorf("stampede bench needs at least 1 scan op, got %d", scanOps)
	}
	if base.Sets*base.Ways < loadgen.ScanKeys {
		// With fewer negative-cache slots than the scan cycle has keys,
		// verdicts are evicted before their first revisit and the
		// scan-neg leg degenerates to all-backend — not a defense
		// regression, just a cache too small to remember the flood.
		return fmt.Errorf("stampede bench needs sets*ways >= %d (the adv:scan cycle), got %d",
			loadgen.ScanKeys, base.Sets*base.Ways)
	}
	fmt.Fprintf(w, "stampede bench: %d sets x %d ways, %d clients x %d storms, %d scan ops\n",
		base.Sets, base.Ways, clients, stampedeStorms, scanOps)
	fmt.Fprintf(w, "%-14s %12s %12s %10s %8s\n", "scenario", "loads-off", "loads-on", "misses", "off/on")

	rows := make([]stampedeRow, 0, 3)
	for _, sc := range []struct {
		name   string
		leg    func(cfg live.Config) (uint64, uint64, error)
		defend func(cfg *live.Config)
	}{
		{"flash-storm", func(cfg live.Config) (uint64, uint64, error) {
			return stormLeg(cfg, clients, false, valSize)
		}, func(cfg *live.Config) { cfg.Coalesce = true }},
		{"absent-flood", func(cfg live.Config) (uint64, uint64, error) {
			return stormLeg(cfg, clients, true, valSize)
		}, func(cfg *live.Config) {
			cfg.Coalesce = true
			cfg.NegOps = 1 << 30 // one verdict must span the whole flood
		}},
		{"scan-neg", func(cfg live.Config) (uint64, uint64, error) {
			return scanLeg(cfg, scanOps, valSize)
		}, func(cfg *live.Config) {
			cfg.Coalesce = true
			cfg.NegOps = 64
		}},
	} {
		off, _, err := sc.leg(base)
		if err != nil {
			return fmt.Errorf("%s undefended: %w", sc.name, err)
		}
		cfg := base
		sc.defend(&cfg)
		on, misses, err := sc.leg(cfg)
		if err != nil {
			return fmt.Errorf("%s defended: %w", sc.name, err)
		}
		row := stampedeRow{scenario: sc.name, off: off, on: on, misses: misses}
		if on > 0 {
			row.reduction = float64(off) / float64(on)
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-14s %12d %12d %10d %8.2f\n", row.scenario, row.off, row.on, row.misses, row.reduction)
	}

	// The gate: every scenario must show a strict reduction in backend
	// calls. A bench that merely reports would let a regression slide.
	var failed bool
	for _, r := range rows {
		verdict := "PASS"
		if r.on >= r.off {
			verdict = "FAIL"
			failed = true
		}
		fmt.Fprintf(w, "GATE %s: defended %d < undefended %d: %s\n", r.scenario, r.on, r.off, verdict)
	}
	if failed {
		return fmt.Errorf("stampede gate failed: defended leg did not reduce backend loads")
	}
	return nil
}

// checkLeg asserts the post-conditions every leg must satisfy at rest:
// structural invariants plus the stampede conservation law.
func checkLeg(c *live.Cache) (misses uint64, err error) {
	if err := c.CheckInvariants(); err != nil {
		return 0, err
	}
	s := c.Stats()
	resolved := s.Loads + s.LoadRaces + s.LoadAbsents + s.CoalescedLoads + s.NegHits + s.NegInserts
	if resolved != s.GetMisses {
		return 0, fmt.Errorf("conservation broken: loads %d + races %d + absents %d + coalesced %d + neg %d/%d != misses %d",
			s.Loads, s.LoadRaces, s.LoadAbsents, s.CoalescedLoads, s.NegHits, s.NegInserts, s.GetMisses)
	}
	return s.GetMisses, nil
}

// stormLeg runs stampedeStorms synchronized miss storms of `clients`
// goroutines each and returns the backend Loader call count. The
// loader spins (on the cache's own miss counter — op-count, not wall
// clock) until the whole round has missed, which makes the count a
// deterministic function of the configuration: no client can sneak a
// hit before the storm resolves. absent selects the flood variant
// where the hammered key does not exist in the backend.
func stormLeg(cfg live.Config, clients int, absent bool, valSize int) (loads, misses uint64, err error) {
	var calls atomic.Uint64
	var wantMisses atomic.Uint64
	var c *live.Cache
	inner := loadgen.AbsentLoader(valSize)
	cfg.Loader = func(key string) []byte {
		calls.Add(1)
		for c.Stats().GetMisses < wantMisses.Load() {
			runtime.Gosched()
		}
		return inner(key)
	}
	c, err = live.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	for r := 0; r < stampedeStorms; r++ {
		key := loadgen.FlashKey(uint64(r))
		if absent {
			key = loadgen.AbsentKey(0)
		}
		wantMisses.Store(c.Stats().GetMisses + uint64(clients))
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				c.Get(key)
			}()
		}
		close(start)
		wg.Wait()
	}
	misses, err = checkLeg(c)
	return calls.Load(), misses, err
}

// scanLeg replays a single-goroutine adv:scan flood and returns the
// backend Loader call count — with negative caching on, only verdict
// expiries reach the backend.
func scanLeg(cfg live.Config, n, valSize int) (loads, misses uint64, err error) {
	var calls atomic.Uint64
	inner := loadgen.AbsentLoader(valSize)
	cfg.Loader = func(key string) []byte {
		calls.Add(1)
		return inner(key)
	}
	c, err := live.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	s, err := loadgen.NewStream(loadgen.AdvScan, 0, valSize)
	if err != nil {
		return 0, 0, err
	}
	loadgen.RunStream(c, s, n)
	misses, err = checkLeg(c)
	return calls.Load(), misses, err
}
