package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
	"rwp/internal/live/proto"
)

// target replays a loadgen op stream against one cache through one
// transport. Implementations must be single-goroutine deterministic:
// the same stream through any transport yields byte-identical stats
// (the differential tests compare them directly).
type target interface {
	// replay issues ops in stream order.
	replay(ops []loadgen.Op) error
	// statsJSON fetches the stats document through the transport.
	statsJSON() ([]byte, error)
	// Close releases any server/client the target spun up.
	Close() error
}

// newTarget builds the named transport around c. batch is the maximum
// ops one binary MGET/MPUT frame carries; depth is how many frames the
// binary client pipelines per flush (both ignored by direct/http).
func newTarget(transport string, c *live.Cache, batch, depth int) (target, error) {
	switch transport {
	case "direct":
		return directTarget{c: c}, nil
	case "http":
		srv := httptest.NewServer(newHandler(c))
		return &httpTarget{srv: srv, client: srv.Client()}, nil
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		tsrv := newTCPServer(ln, backend{c}, io.Discard)
		go tsrv.serve()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			ln.Close()
			return nil, err
		}
		if batch <= 0 {
			batch = 1
		}
		if depth <= 0 {
			depth = 1
		}
		return &tcpTarget{tsrv: tsrv, conn: conn, cli: proto.NewClient(conn), batch: batch, depth: depth}, nil
	default:
		return nil, fmt.Errorf("unknown transport %q (want direct, http, or tcp)", transport)
	}
}

// directTarget calls the cache in process — the PR-4 baseline.
type directTarget struct{ c *live.Cache }

func (t directTarget) replay(ops []loadgen.Op) error {
	loadgen.ApplyAll(t.c, ops)
	return nil
}

func (t directTarget) statsJSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeStatsJSON(&buf, t.c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (t directTarget) Close() error { return nil }

// httpTarget drives the HTTP surface: one request per op, exactly like
// an external client of /get and /put.
type httpTarget struct {
	srv    *httptest.Server
	client *http.Client
}

func (t *httpTarget) replay(ops []loadgen.Op) error {
	for i := range ops {
		if err := t.do(&ops[i]); err != nil {
			return err
		}
	}
	return nil
}

// do issues one op as one HTTP request — also the unit the proto bench
// times for HTTP latency samples.
func (t *httpTarget) do(op *loadgen.Op) error {
	if op.Put {
		req, err := http.NewRequest(http.MethodPut,
			t.srv.URL+"/put?key="+op.Key, bytes.NewReader(op.Value))
		if err != nil {
			return err
		}
		resp, err := t.client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			return fmt.Errorf("put %q: status %d", op.Key, resp.StatusCode)
		}
		return nil
	}
	resp, err := t.client.Get(t.srv.URL + "/get?key=" + op.Key)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("get %q: status %d", op.Key, resp.StatusCode)
	}
	return nil
}

func (t *httpTarget) statsJSON() ([]byte, error) {
	resp, err := t.client.Get(t.srv.URL + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func (t *httpTarget) Close() error {
	t.srv.Close()
	return nil
}

// tcpTarget drives the binary protocol: the stream is split into
// same-kind runs of at most `batch` ops, each run becomes one
// MGET/MPUT frame, and up to `depth` frames ride one pipelined flush.
// Run order equals stream order, so semantics match op-by-op replay.
type tcpTarget struct {
	tsrv  *tcpServer
	conn  net.Conn
	cli   *proto.Client
	batch int
	depth int

	keys []string   // reused MGET scratch
	kvs  []proto.KV // reused MPUT scratch
}

func (t *tcpTarget) replay(ops []loadgen.Op) error {
	for _, run := range loadgen.Runs(ops, t.batch) {
		if err := t.queueRun(run); err != nil {
			return err
		}
		if t.cli.Depth() >= t.depth {
			if _, err := t.cli.Flush(); err != nil {
				return err
			}
		}
	}
	_, err := t.cli.Flush()
	return err
}

// queueRun frames one same-kind run as a single MGET or MPUT request.
func (t *tcpTarget) queueRun(run []loadgen.Op) error {
	if run[0].Put {
		t.kvs = t.kvs[:0]
		for _, op := range run {
			t.kvs = append(t.kvs, proto.KV{Key: op.Key, Value: op.Value})
		}
		return t.cli.QueueMPut(t.kvs)
	}
	t.keys = t.keys[:0]
	for _, op := range run {
		t.keys = append(t.keys, op.Key)
	}
	return t.cli.QueueMGet(t.keys)
}

func (t *tcpTarget) statsJSON() ([]byte, error) { return t.cli.Stats() }

func (t *tcpTarget) Close() error {
	t.conn.Close()
	return t.tsrv.shutdownNow()
}

// shutdownNow drains with an already-expired deadline: close listener
// and connections immediately (test/bench teardown, nothing to drain
// gracefully).
func (s *tcpServer) shutdownNow() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.mu.Lock()
	for conn := range s.conns {
		// Teardown hard-close; the lock only guards the conns map, and
		// Close on a TCP conn does not block.
		//rwplint:allow lockheld — teardown hard-close; nothing else contends for s.mu anymore
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// parseTransport validates the -transport flag value.
func parseTransport(v string) (string, error) {
	switch strings.TrimSpace(v) {
	case "direct", "http", "tcp":
		return strings.TrimSpace(v), nil
	}
	return "", fmt.Errorf("unknown transport %q (want direct, http, or tcp)", v)
}
