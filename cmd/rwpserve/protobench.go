package main

import (
	"bytes"
	"fmt"
	"io"
	"slices"
	"testing"
	"time"

	"rwp/internal/live"
	"rwp/internal/live/drive"
	"rwp/internal/live/loadgen"
	"rwp/internal/live/proto"
)

// transportLeg is one transport's measured numbers. The latency unit
// differs by design: HTTP is timed per request (its natural unit),
// the binary protocol per pipelined flush (one write burst of up to
// `depth` frames and its replies) — the comparison the bench exists
// for is throughput, where both legs count the same ops.
type transportLeg struct {
	name     string
	unit     string // what one latency sample spans
	opsPerS  float64
	p50, p99 time.Duration
}

// runProtoBench replays one seeded loadgen stream through HTTP
// (request per op) and the binary protocol (batched MGET/MPUT frames,
// pipelined `depth` deep) against identically configured caches, and
// reports throughput plus p50/p99 latency for each. Wall-clock timing
// lives here in cmd/; both caches see the exact same deterministic op
// stream, so the hit-rate work per op is identical across legs.
func runProtoBench(w io.Writer, base live.Config, profile string, seed uint64, valSize, ops, batch, depth int) error {
	if batch <= 0 {
		batch = 1
	}
	if depth <= 0 {
		depth = 1
	}
	g, err := loadgen.NewStream(profile, seed, valSize)
	if err != nil {
		return err
	}
	stream := loadgen.Take(g, ops)
	fmt.Fprintf(w, "proto bench: profile=%s ops=%d batch=%d pipeline=%d sets=%d ways=%d\n",
		profile, ops, batch, depth, base.Sets, base.Ways)

	legs := make([]transportLeg, 0, 2)
	httpLeg, err := benchHTTP(base, stream)
	if err != nil {
		return err
	}
	legs = append(legs, httpLeg)
	tcpLeg, err := benchTCP(base, stream, batch, depth)
	if err != nil {
		return err
	}
	legs = append(legs, tcpLeg)

	fmt.Fprintf(w, "%-8s %12s %10s %10s  %s\n", "leg", "ops/s", "p50(us)", "p99(us)", "latency unit")
	for _, leg := range legs {
		fmt.Fprintf(w, "%-8s %12.0f %10.1f %10.1f  %s\n",
			leg.name, leg.opsPerS,
			float64(leg.p50)/float64(time.Microsecond),
			float64(leg.p99)/float64(time.Microsecond),
			leg.unit)
	}
	ratio := tcpLeg.opsPerS / httpLeg.opsPerS
	fmt.Fprintf(w, "binary/http throughput ratio: %.2fx\n", ratio)
	return reportAllocs(w, base, valSize, batch, depth)
}

// frameLoop replays one frame's bytes forever without allocating, so
// AllocsPerRun isolates the frame reader's own allocations.
type frameLoop struct {
	frame []byte
	off   int
}

func (l *frameLoop) Read(p []byte) (int, error) {
	if l.off == len(l.frame) {
		l.off = 0
	}
	n := copy(p, l.frame[l.off:])
	l.off += n
	return n, nil
}

// reportAllocs measures allocations/op (testing.AllocsPerRun) for the
// hot serving legs and appends them to the bench report — the baseline
// the zero-allocation read-path work must beat. The direct and
// frame-read numbers are deterministic and pinned (they are the same
// quantities the AllocsPerRun tests in internal/live and
// internal/live/proto assert); the end-to-end TCP number includes the
// server goroutine and the payload codecs, so it is recorded for trend
// rather than gated.
func reportAllocs(w io.Writer, base live.Config, valSize, batch, depth int) error {
	if valSize <= 0 {
		valSize = 64
	}
	val := bytes.Repeat([]byte("v"), valSize)

	// Leg 1: live cache Get hit, no transport. Exactly the copy-out.
	c, err := live.New(base)
	if err != nil {
		return err
	}
	c.Put("bench:hot", val)
	hit := testing.AllocsPerRun(500, func() {
		if _, ok := c.Get("bench:hot"); !ok {
			panic("protobench: warmed key missed")
		}
	})

	// Leg 2: proto frame decode from a warmed Reader.
	frame := proto.AppendFrame(nil, proto.OpPing, val)
	r := proto.NewReader(&frameLoop{frame: frame})
	if _, _, err := r.ReadFrame(); err != nil {
		return err
	}
	read := testing.AllocsPerRun(500, func() {
		if _, _, err := r.ReadFrame(); err != nil {
			panic(err)
		}
	})

	// Leg 3: TCP Get hit end to end — real client, real loopback
	// socket, real per-connection server loop. AllocsPerRun counts
	// mallocs across all goroutines, so the server side is included;
	// that is the number a zero-alloc PR has to drive down.
	srv, err := live.New(base)
	if err != nil {
		return err
	}
	tt, err := drive.NewTCP(srv, batch, depth)
	if err != nil {
		return err
	}
	defer tt.Close()
	if _, err := tt.Client().Put("bench:hot", val); err != nil {
		return err
	}
	e2e := testing.AllocsPerRun(200, func() {
		res, err := tt.Client().Get("bench:hot")
		if err != nil || res.Status != proto.StatusHit {
			panic(fmt.Sprintf("protobench: tcp get = (%v, %v)", res.Status, err))
		}
	})

	fmt.Fprintf(w, "allocs/op live get-hit (direct): %.1f\n", hit)
	fmt.Fprintf(w, "allocs/op proto frame read: %.1f\n", read)
	fmt.Fprintf(w, "allocs/op tcp get-hit (e2e): %.1f\n", e2e)
	return nil
}

// benchHTTP times the stream as one HTTP request per op.
func benchHTTP(base live.Config, stream []loadgen.Op) (transportLeg, error) {
	c, err := live.New(base)
	if err != nil {
		return transportLeg{}, err
	}
	ht, err := drive.NewHTTP(c)
	if err != nil {
		return transportLeg{}, err
	}
	defer ht.Close()

	lat := make([]time.Duration, 0, len(stream))
	start := time.Now()
	for i := range stream {
		t0 := time.Now()
		if err := ht.Do(&stream[i]); err != nil {
			return transportLeg{}, err
		}
		lat = append(lat, time.Since(t0))
	}
	return legFrom("http", "per request (1 op)", len(stream), time.Since(start), lat), nil
}

// benchTCP times the stream as batched frames, `depth` frames per
// pipelined flush; each latency sample is one Flush round trip.
func benchTCP(base live.Config, stream []loadgen.Op, batch, depth int) (transportLeg, error) {
	c, err := live.New(base)
	if err != nil {
		return transportLeg{}, err
	}
	tt, err := drive.NewTCP(c, batch, depth)
	if err != nil {
		return transportLeg{}, err
	}
	defer tt.Close()

	runs := loadgen.Runs(stream, batch)
	var lat []time.Duration
	start := time.Now()
	for _, run := range runs {
		if err := tt.QueueRun(run); err != nil {
			return transportLeg{}, err
		}
		if tt.Client().Depth() >= depth {
			t0 := time.Now()
			if _, err := tt.Client().Flush(); err != nil {
				return transportLeg{}, err
			}
			lat = append(lat, time.Since(t0))
		}
	}
	if tt.Client().Depth() > 0 {
		t0 := time.Now()
		if _, err := tt.Client().Flush(); err != nil {
			return transportLeg{}, err
		}
		lat = append(lat, time.Since(t0))
	}
	unit := fmt.Sprintf("per flush (<=%d frames x <=%d ops)", depth, batch)
	return legFrom("binary", unit, len(stream), time.Since(start), lat), nil
}

// legFrom assembles a leg's summary numbers.
func legFrom(name, unit string, ops int, elapsed time.Duration, lat []time.Duration) transportLeg {
	leg := transportLeg{name: name, unit: unit}
	if elapsed > 0 {
		leg.opsPerS = float64(ops) / elapsed.Seconds()
	}
	leg.p50 = percentile(lat, 0.50)
	leg.p99 = percentile(lat, 0.99)
	return leg
}

// percentile is the nearest-rank percentile of the samples.
func percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := slices.Clone(lat)
	slices.Sort(s)
	i := int(p*float64(len(s)-1) + 0.5)
	return s[i]
}
