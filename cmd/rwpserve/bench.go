package main

import (
	"fmt"
	"io"

	"rwp/internal/live"
	"rwp/internal/live/drive"
	"rwp/internal/live/loadgen"
	"rwp/internal/stats"
)

// benchRow is one profile's RWP-vs-LRU comparison.
type benchRow struct {
	profile  string
	lru, rwp float64 // measured read-hit rates
}

// runBench measures the read-hit rate of the live cache under each
// profile's loadgen stream, once with per-set LRU and once with per-set
// RWP, using the simulator's warmup/measure discipline: warm ops, reset
// stats, measure ops. The stream is driven through the chosen transport
// (direct, http, or tcp) — a single-goroutine client either way, so
// every number is deterministic and transport-invariant; batch and
// depth only shape the tcp transport's framing.
func runBench(w io.Writer, base live.Config, profiles []string, warmup, measure, valSize int, transport string, batch, depth int) error {
	fmt.Fprintf(w, "live cache bench: %d sets x %d ways, warmup %d ops, measure %d ops, transport %s\n",
		base.Sets, base.Ways, warmup, measure, transport)
	fmt.Fprintf(w, "%-12s %10s %10s %8s\n", "profile", "lru", "rwp", "rwp/lru")
	var rows []benchRow
	for _, prof := range profiles {
		row := benchRow{profile: prof}
		for _, pol := range []string{"lru", "rwp"} {
			cfg := base
			cfg.Policy = pol
			cfg.Record = false
			c, err := live.New(cfg)
			if err != nil {
				return err
			}
			g, err := loadgen.NewStream(prof, 0, valSize)
			if err != nil {
				return err
			}
			tgt, err := drive.New(transport, c, batch, depth)
			if err != nil {
				return err
			}
			if err := tgt.Replay(loadgen.Take(g, warmup)); err != nil {
				tgt.Close()
				return err
			}
			c.ResetStats()
			if err := tgt.Replay(loadgen.Take(g, measure)); err != nil {
				tgt.Close()
				return err
			}
			tgt.Close()
			hr := c.Stats().ReadHitRate()
			if pol == "lru" {
				row.lru = hr
			} else {
				row.rwp = hr
			}
		}
		rows = append(rows, row)
		if r, ok := ratio(row); ok {
			fmt.Fprintf(w, "%-12s %9.2f%% %9.2f%% %8.3f\n", row.profile, 100*row.lru, 100*row.rwp, r)
		} else {
			fmt.Fprintf(w, "%-12s %9.2f%% %9.2f%% %8s\n", row.profile, 100*row.lru, 100*row.rwp, "n/a")
		}
	}
	var ratios []float64
	var skipped []string
	for _, r := range rows {
		if v, ok := ratio(r); ok {
			ratios = append(ratios, v)
		} else {
			skipped = append(skipped, r.profile)
		}
	}
	fmt.Fprintf(w, "%-12s %10s %10s %8.3f\n", "geomean", "", "", stats.GeoMean(ratios))
	if len(skipped) > 0 {
		fmt.Fprintf(w, "geomean excludes %v (LRU read-hit rate ~0: ratio undefined)\n", skipped)
	}
	return nil
}

// ratio is the per-profile rwp/lru read-hit-rate ratio. When LRU's hit
// rate is essentially zero the ratio is undefined (any RWP hits would
// make it arbitrarily large), so such rows are reported but excluded
// from the geomean.
func ratio(r benchRow) (float64, bool) {
	const eps = 1e-3
	if r.lru < eps {
		return 0, false
	}
	rwp := r.rwp
	if rwp < eps {
		rwp = eps
	}
	return rwp / r.lru, true
}
