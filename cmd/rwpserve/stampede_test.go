package main

import (
	"strings"
	"testing"
)

// stampedeArgs keeps CLI-test runs fast while respecting the bench's
// geometry floor (sets*ways must cover the adv:scan cycle so verdicts
// survive to their first revisit).
func stampedeArgs(extra ...string) []string {
	base := []string{"-stampede-bench", "-sets", "1024", "-ways", "4", "-stampede-ops", "8000"}
	return append(base, extra...)
}

// TestStampedeBenchCLI runs the gated bench through the real flag
// surface: exit 0, every scenario present with a PASS verdict, no FAIL
// anywhere, and — since every leg is deterministic by construction — a
// second run must produce byte-identical output.
func TestStampedeBenchCLI(t *testing.T) {
	out, errb, code := runCLI(t, stampedeArgs()...)
	if code != 0 {
		t.Fatalf("stampede bench exit %d, stderr: %s\n%s", code, errb, out)
	}
	for _, sc := range []string{"flash-storm", "absent-flood", "scan-neg"} {
		if !strings.Contains(out, "GATE "+sc+": ") {
			t.Errorf("output missing the %s gate:\n%s", sc, out)
		}
	}
	if !strings.Contains(out, "PASS") || strings.Contains(out, "FAIL") {
		t.Errorf("gates did not all pass:\n%s", out)
	}

	again, errb, code := runCLI(t, stampedeArgs()...)
	if code != 0 {
		t.Fatalf("second run exit %d, stderr: %s", code, errb)
	}
	if again != out {
		t.Errorf("bench output not deterministic:\nfirst:\n%s\nsecond:\n%s", out, again)
	}
}

// TestStampedeBenchRejects: the flag surface refuses configurations
// the bench cannot score honestly — too few clients to storm, and a
// cache too small to remember the scan flood's verdicts.
func TestStampedeBenchRejects(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"one client", stampedeArgs("-stampede-clients", "1"), "at least 2 clients"},
		{"tiny cache", []string{"-stampede-bench", "-sets", "256", "-ways", "8"}, "sets*ways"},
		{"record", stampedeArgs("-record", "x.jsonl"), "-record"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, errb, code := runCLI(t, tc.args...)
			if code == 0 {
				t.Fatalf("%v: exit 0, want failure", tc.args)
			}
			if !strings.Contains(errb, tc.want) {
				t.Errorf("stderr missing %q: %s", tc.want, errb)
			}
		})
	}
}
