// Command rwpserve runs the live RWP key-value cache (internal/live)
// as a network service, and doubles as the deterministic harness
// around it:
//
//	rwpserve                         serve /get /put /stats on -addr
//	rwpserve -tcp :8345              additionally serve the binary
//	                                 protocol (internal/live/proto)
//	rwpserve -selftest 20000         run a seeded loadgen burst through
//	                                 -transport, print /stats JSON, exit
//	rwpserve -record reqs.jsonl ...  additionally journal every request
//	                                 (schema rwp-reqlog-v1; replay with
//	                                 cmd/rwpreplay)
//	rwpserve -snapshot s.snap ...    write a state snapshot (schema
//	                                 rwp-snap-v2) at graceful shutdown /
//	                                 selftest exit; -snap-every N adds
//	                                 op-count-clocked checkpoints
//	rwpserve -restore s.snap ...     warm-start from a snapshot; /stats
//	                                 and all future behavior are
//	                                 byte-identical to a never-restarted
//	                                 run (bad snapshots log + start cold)
//	rwpserve -bench                  RWP vs LRU read-hit-rate bench
//	                                 over workload profiles, exit
//	rwpserve -proto-bench            binary vs HTTP throughput/latency
//	                                 bench, exit
//	rwpserve -stampede-bench         miss-storm bench: backend Loader
//	                                 calls with the stampede defenses
//	                                 (-coalesce / -neg-ops) off vs on,
//	                                 gated — defended must be strictly
//	                                 lower — then exit
//
// The HTTP endpoints:
//
//	GET  /get?key=K       value bytes; X-Cache: hit|fill|miss
//	PUT  /put?key=K       body is the value; X-Cache: overwrite|insert
//	GET  /stats           JSON aggregate (shard-count invariant)
//
// The binary listener speaks the frame protocol documented in
// internal/live/proto: pipelined GET/PUT/MGET/MPUT/STATS/PING with the
// same cache semantics as HTTP (STATS returns the /stats body verbatim).
//
// All wall-clock concerns (HTTP, shutdown signals, bench timing) live
// here in cmd/; internal/live itself is clocked purely by operation
// counts, so the -selftest output is bit-identical across runs, across
// -shards, and across -transport.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"rwp/internal/live"
	"rwp/internal/live/drive"
	"rwp/internal/live/loadgen"
	"rwp/internal/probe"
	"rwp/internal/snap"
	"rwp/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body. ctx cancellation triggers graceful
// server shutdown (main wires it to SIGINT/SIGTERM).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rwpserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8344", "HTTP listen address (host:port; :0 picks a free port)")
	tcpAddr := fs.String("tcp", "", "binary-protocol listen address (empty: HTTP only)")
	policyName := fs.String("policy", "rwp", "replacement policy: lru or rwp")
	sets := fs.Int("sets", 1024, "total sets (power of two)")
	ways := fs.Int("ways", 16, "ways per set")
	shards := fs.Int("shards", 8, "lock shards (must divide sets; behavior-invariant)")
	interval := fs.Uint64("interval", 0, "RWP repartition interval in per-set ops (0: default)")
	valueSize := fs.Int("value-size", 0, "synthetic value size in bytes (0: default)")
	noLoader := fs.Bool("no-loader", false, "disable the synthetic backing store (Get misses return 404)")
	coalesce := fs.Bool("coalesce", false, "singleflight fill coalescing: concurrent misses on one key share one Loader call")
	negOps := fs.Uint64("neg-ops", 0, "negatively cache Loader misses for N per-set ops (0: off)")
	leaseOps := fs.Uint64("lease-ops", 0, "depose a coalesced fill stuck for N per-set ops (0: never; needs -coalesce)")
	probeOn := fs.Bool("probe", true, "attach probe recorders (probe section of /stats)")
	recordPath := fs.String("record", "", "journal every request to this file (schema rwp-reqlog-v1)")
	snapPath := fs.String("snapshot", "", "write a state snapshot (schema rwp-snap-v2) here at graceful shutdown / selftest exit")
	snapEvery := fs.Uint64("snap-every", 0, "additionally checkpoint -snapshot every N data ops (serve mode; 0: shutdown only)")
	restorePath := fs.String("restore", "", "warm-start from this snapshot; a bad snapshot logs and starts cold")
	selftest := fs.Int("selftest", 0, "run N loadgen ops through -transport, print /stats JSON, exit")
	selftestSkip := fs.Int("selftest-skip", 0, "skip the first K of the -selftest ops (resume a stream after -restore)")
	profile := fs.String("profile", "mcf", "workload profile for -selftest and -proto-bench")
	seed := fs.Uint64("seed", 0, "loadgen seed offset for -selftest and -proto-bench")
	transport := fs.String("transport", "direct", "transport for -selftest/-bench: direct, http, or tcp")
	batch := fs.Int("batch", 64, "max ops per binary MGET/MPUT frame (tcp transport)")
	pipeline := fs.Int("pipeline", 8, "frames per pipelined flush (tcp transport)")
	bench := fs.Bool("bench", false, "run the RWP vs LRU bench and exit")
	benchOps := fs.Int("bench-ops", 400_000, "measured ops per bench run")
	benchWarmup := fs.Int("bench-warmup", 200_000, "warmup ops per bench run")
	benchProfiles := fs.String("bench-profiles", "", "comma-separated bench profiles (default: cache-sensitive set)")
	protoBench := fs.Bool("proto-bench", false, "run the binary-vs-HTTP transport bench and exit")
	protoOps := fs.Int("proto-ops", 20_000, "ops per -proto-bench leg")
	stampedeBench := fs.Bool("stampede-bench", false, "run the stampede-defense bench (gated) and exit")
	stampedeClients := fs.Int("stampede-clients", 8, "concurrent clients per -stampede-bench storm")
	stampedeOps := fs.Int("stampede-ops", 20_000, "stream ops per -stampede-bench scan leg")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "rwpserve: unexpected arguments %q\n", fs.Args())
		return 2
	}
	tr, err := drive.ParseTransport(*transport)
	if err != nil {
		fmt.Fprintf(stderr, "rwpserve: %v\n", err)
		return 2
	}

	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = *sets, *ways, *shards
	cfg.Policy = *policyName
	cfg.Record = *probeOn
	if *interval > 0 {
		cfg.RWP.Interval = *interval
	}
	if !*noLoader {
		// The backing store has a hole at loadgen's absent keyspace, so
		// the adversarial scan profile sees true backend misses; for
		// every other key this serves the same bytes Loader always has.
		cfg.Loader = loadgen.AbsentLoader(*valueSize)
	}
	cfg.Coalesce = *coalesce
	cfg.NegOps = *negOps
	cfg.LeaseOps = *leaseOps

	anyBench := *bench || *protoBench || *stampedeBench
	if *recordPath != "" && anyBench {
		fmt.Fprintln(stderr, "rwpserve: -record needs -selftest or serve mode (benches build private caches)")
		return 2
	}
	if (*snapPath != "" || *restorePath != "") && anyBench {
		fmt.Fprintln(stderr, "rwpserve: -snapshot/-restore need -selftest or serve mode (benches build private caches)")
		return 2
	}
	if *snapEvery > 0 && (*snapPath == "" || *selftest > 0 || anyBench) {
		fmt.Fprintln(stderr, "rwpserve: -snap-every needs serve mode with -snapshot")
		return 2
	}
	if *selftestSkip < 0 || *selftestSkip > *selftest {
		// skip == selftest is allowed on purpose: it restores, replays
		// zero ops, prints stats, and re-snapshots — the fixed-point
		// probe the restart smoke in scripts/check.sh runs.
		fmt.Fprintln(stderr, "rwpserve: -selftest-skip must be in [0, -selftest]")
		return 2
	}

	if *bench {
		profiles := workload.SensitiveNames()
		if *benchProfiles != "" {
			profiles = strings.Split(*benchProfiles, ",")
		}
		if err := runBench(stdout, cfg, profiles, *benchWarmup, *benchOps, *valueSize, tr, *batch, *pipeline); err != nil {
			fmt.Fprintf(stderr, "rwpserve: %v\n", err)
			return 1
		}
		return 0
	}

	if *protoBench {
		if err := runProtoBench(stdout, cfg, *profile, *seed, *valueSize, *protoOps, *batch, *pipeline); err != nil {
			fmt.Fprintf(stderr, "rwpserve: %v\n", err)
			return 1
		}
		return 0
	}

	if *stampedeBench {
		if err := runStampedeBench(stdout, cfg, *stampedeClients, *stampedeOps, *valueSize); err != nil {
			fmt.Fprintf(stderr, "rwpserve: %v\n", err)
			return 1
		}
		return 0
	}

	var closeLog func() error
	if *recordPath != "" {
		// The description deliberately omits the shard count (a lock
		// layout detail) so journals are byte-identical across -shards.
		desc := fmt.Sprintf("rwpserve policy=%s sets=%d ways=%d", cfg.Policy, cfg.Sets, cfg.Ways)
		log, cl, err := openReqLog(*recordPath, desc)
		if err != nil {
			fmt.Fprintf(stderr, "rwpserve: %v\n", err)
			return 2
		}
		cfg.ReqLog = log
		closeLog = cl
	}

	c, err := live.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "rwpserve: %v\n", err)
		return 2
	}

	if *restorePath != "" {
		// A bad snapshot — unreadable, corrupt, wrong geometry — must
		// never take the server down or leave partial state: log why
		// and serve cold, exactly as if no snapshot existed.
		if rerr := restoreCache(c, *restorePath); rerr != nil {
			fmt.Fprintf(stderr, "rwpserve: restore %s: %v; starting cold\n", *restorePath, rerr)
		}
	}

	if *selftest > 0 {
		err := runSelftest(stdout, c, tr, *profile, *seed, *valueSize, *selftest, *selftestSkip, *batch, *pipeline)
		if err == nil && *snapPath != "" {
			err = snap.WriteFile(*snapPath, c.Snapshot())
		}
		if err == nil && closeLog != nil {
			err = closeLog()
		}
		if err != nil {
			fmt.Fprintf(stderr, "rwpserve: %v\n", err)
			return 1
		}
		return 0
	}

	err = serve(ctx, *addr, *tcpAddr, c, *snapPath, *snapEvery, stdout, stderr)
	if closeLog != nil {
		if cerr := closeLog(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "rwpserve: %v\n", err)
		return 1
	}
	return 0
}

// openReqLog creates the request journal at path and returns the
// writer plus a close func that flushes, closes the file, and surfaces
// any sticky write error.
func openReqLog(path, desc string) (*probe.ReqLogWriter, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w, err := probe.NewReqLogWriter(f, desc)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, func() error {
		werr := w.Close()
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		return werr
	}, nil
}

// runSelftest drives n single-goroutine loadgen ops against c through
// the chosen transport and prints the stats payload fetched through
// that same transport. Deterministic: the output is bit-identical
// across repeated runs, across shard counts, and across transports —
// the differential tests compare these bytes directly.
//
// skip discards the first skip generator ops without issuing them, so
// a -restore'd server resumes the stream exactly where the snapshotted
// run left off: restore at op K + replay ops K..n must print the same
// bytes as a never-restarted n-op run.
func runSelftest(w io.Writer, c *live.Cache, transport, profile string, seed uint64, valSize, n, skip, batch, depth int) error {
	g, err := loadgen.NewStream(profile, seed, valSize)
	if err != nil {
		return err
	}
	for i := 0; i < skip; i++ {
		g.Next()
	}
	tgt, err := drive.New(transport, c, batch, depth)
	if err != nil {
		return err
	}
	defer tgt.Close()
	if err := tgt.Replay(loadgen.Take(g, n-skip)); err != nil {
		return err
	}
	data, err := tgt.StatsJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
