// Command rwpserve runs the live RWP key-value cache (internal/live)
// as an HTTP service, and doubles as the deterministic harness around
// it:
//
//	rwpserve                         serve /get /put /stats on -addr
//	rwpserve -selftest 20000         run a seeded loadgen burst in
//	                                 process, print /stats JSON, exit
//	rwpserve -bench                  RWP vs LRU read-hit-rate bench
//	                                 over workload profiles, exit
//
// The server endpoints:
//
//	GET  /get?key=K       value bytes; X-Cache: hit|fill|miss
//	PUT  /put?key=K       body is the value; X-Cache: overwrite|insert
//	GET  /stats           JSON aggregate (shard-count invariant)
//
// All wall-clock concerns (HTTP, shutdown signals) live here in cmd/;
// internal/live itself is clocked purely by operation counts, so the
// -selftest output is bit-identical across runs and across -shards.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
	"rwp/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main's testable body.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rwpserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8344", "listen address (host:port; :0 picks a free port)")
	policyName := fs.String("policy", "rwp", "replacement policy: lru or rwp")
	sets := fs.Int("sets", 1024, "total sets (power of two)")
	ways := fs.Int("ways", 16, "ways per set")
	shards := fs.Int("shards", 8, "lock shards (must divide sets; behavior-invariant)")
	interval := fs.Uint64("interval", 0, "RWP repartition interval in per-set ops (0: default)")
	valueSize := fs.Int("value-size", 0, "synthetic value size in bytes (0: default)")
	noLoader := fs.Bool("no-loader", false, "disable the synthetic backing store (Get misses return 404)")
	record := fs.Bool("record", true, "attach probe recorders (probe section of /stats)")
	selftest := fs.Int("selftest", 0, "run N in-process loadgen ops, print /stats JSON, exit")
	profile := fs.String("profile", "mcf", "workload profile for -selftest")
	seed := fs.Uint64("seed", 0, "loadgen seed offset for -selftest")
	bench := fs.Bool("bench", false, "run the RWP vs LRU bench and exit")
	benchOps := fs.Int("bench-ops", 400_000, "measured ops per bench run")
	benchWarmup := fs.Int("bench-warmup", 200_000, "warmup ops per bench run")
	benchProfiles := fs.String("bench-profiles", "", "comma-separated bench profiles (default: cache-sensitive set)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "rwpserve: unexpected arguments %q\n", fs.Args())
		return 2
	}

	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = *sets, *ways, *shards
	cfg.Policy = *policyName
	cfg.Record = *record
	if *interval > 0 {
		cfg.RWP.Interval = *interval
	}
	if !*noLoader {
		cfg.Loader = loadgen.Loader(*valueSize)
	}

	if *bench {
		profiles := workload.SensitiveNames()
		if *benchProfiles != "" {
			profiles = strings.Split(*benchProfiles, ",")
		}
		if err := runBench(stdout, cfg, profiles, *benchWarmup, *benchOps, *valueSize); err != nil {
			fmt.Fprintf(stderr, "rwpserve: %v\n", err)
			return 1
		}
		return 0
	}

	c, err := live.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "rwpserve: %v\n", err)
		return 2
	}

	if *selftest > 0 {
		if err := runSelftest(stdout, c, *profile, *seed, *valueSize, *selftest); err != nil {
			fmt.Fprintf(stderr, "rwpserve: %v\n", err)
			return 1
		}
		return 0
	}

	if err := serve(*addr, c, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "rwpserve: %v\n", err)
		return 1
	}
	return 0
}

// runSelftest drives n single-goroutine loadgen ops against c and
// prints the /stats payload. Deterministic: the output is bit-identical
// across repeated runs and across shard counts.
func runSelftest(w io.Writer, c *live.Cache, profile string, seed uint64, valSize, n int) error {
	g, err := loadgen.New(profile, seed, valSize)
	if err != nil {
		return err
	}
	loadgen.Run(c, g, n)
	return writeStatsJSON(w, c)
}
