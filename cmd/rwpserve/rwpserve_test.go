package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rwp/internal/live"
	"rwp/internal/live/drive"
	"rwp/internal/live/loadgen"
)

func testCache(t *testing.T, loader bool) *live.Cache {
	t.Helper()
	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = 64, 4, 4
	cfg.Record = true
	if loader {
		cfg.Loader = loadgen.Loader(8)
	}
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestHandlerPutGetStats(t *testing.T) {
	srv := httptest.NewServer(drive.Handler(testCache(t, false)))
	defer srv.Close()

	// Miss without a loader: 404.
	resp, err := http.Get(srv.URL + "/get?key=a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("miss: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	// Insert, then overwrite.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/put?key=a", strings.NewReader("v1"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent || resp.Header.Get("X-Cache") != "insert" {
		t.Fatalf("insert: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	resp, err = http.Post(srv.URL+"/put?key=a", "application/octet-stream", strings.NewReader("v2"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Cache") != "overwrite" {
		t.Fatalf("overwrite: X-Cache %q", resp.Header.Get("X-Cache"))
	}

	// Hit returns the latest value.
	resp, err = http.Get(srv.URL + "/get?key=a")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" || string(body) != "v2" {
		t.Fatalf("hit: status %d, X-Cache %q, body %q", resp.StatusCode, resp.Header.Get("X-Cache"), body)
	}

	// Stats reflect the traffic.
	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var p live.StatsPayload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if p.Policy != "rwp" || p.Capacity != 256 {
		t.Errorf("payload config: %+v", p)
	}
	if p.Stats.Gets != 2 || p.Stats.GetHits != 1 || p.Stats.Puts != 2 || p.Stats.PutInserts != 1 {
		t.Errorf("payload counters: %+v", p.Stats.Counters)
	}
	if p.Probe == nil || p.Probe.Store.Accesses != 2 {
		t.Errorf("payload probe section: %+v", p.Probe)
	}
}

func TestHandlerLoaderFill(t *testing.T) {
	srv := httptest.NewServer(drive.Handler(testCache(t, true)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/get?key=zz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "fill" {
		t.Fatalf("fill: status %d, X-Cache %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if want := loadgen.Value("zz", 8); !bytes.Equal(body, want) {
		t.Fatalf("fill body %x, want %x", body, want)
	}
	// Now resident.
	resp, err = http.Get(srv.URL + "/get?key=zz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second get: X-Cache %q", resp.Header.Get("X-Cache"))
	}
}

func TestHandlerErrors(t *testing.T) {
	srv := httptest.NewServer(drive.Handler(testCache(t, false)))
	defer srv.Close()
	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/get", http.StatusBadRequest},
		{http.MethodPut, "/put", http.StatusBadRequest},
		{http.MethodGet, "/put?key=a", http.StatusMethodNotAllowed},
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestSelftestShardInvariance is the acceptance criterion in miniature:
// the -selftest JSON is byte-identical across repeated runs and across
// shard counts.
func TestSelftestShardInvariance(t *testing.T) {
	out := func(shards string) string {
		var buf, errbuf bytes.Buffer
		args := []string{"-selftest", "5000", "-sets", "128", "-ways", "4",
			"-interval", "32", "-profile", "mcf", "-shards", shards}
		if code := run(context.Background(), args, &buf, &errbuf); code != 0 {
			t.Fatalf("run(shards=%s) = %d, stderr: %s", shards, code, errbuf.String())
		}
		return buf.String()
	}
	base := out("1")
	if !strings.Contains(base, "\"Retargets\"") || strings.Contains(base, "\"Retargets\": 0,") {
		t.Fatalf("selftest output shows no retargets:\n%s", base)
	}
	for _, shards := range []string{"1", "4", "128"} {
		if got := out(shards); got != base {
			t.Errorf("selftest output differs for shards=%s:\n%s\nvs base:\n%s", shards, got, base)
		}
	}
}

func TestBenchSmoke(t *testing.T) {
	var buf, errbuf bytes.Buffer
	args := []string{"-bench", "-bench-profiles", "mcf,wrf", "-sets", "128", "-ways", "4",
		"-interval", "64", "-bench-warmup", "3000", "-bench-ops", "6000"}
	if code := run(context.Background(), args, &buf, &errbuf); code != 0 {
		t.Fatalf("bench run = %d, stderr: %s", code, errbuf.String())
	}
	out := buf.String()
	for _, want := range []string{"profile", "mcf", "wrf", "geomean"} {
		if !strings.Contains(out, want) {
			t.Errorf("bench output missing %q:\n%s", want, out)
		}
	}
}

// TestSelftestTransportInvariance: the -selftest JSON is byte-identical
// across -transport values through the real flag surface.
func TestSelftestTransportInvariance(t *testing.T) {
	out := func(transport string) string {
		var buf, errbuf bytes.Buffer
		args := []string{"-selftest", "2000", "-sets", "64", "-ways", "4",
			"-profile", "mcf", "-transport", transport, "-batch", "16", "-pipeline", "4"}
		if code := run(context.Background(), args, &buf, &errbuf); code != 0 {
			t.Fatalf("run(transport=%s) = %d, stderr: %s", transport, code, errbuf.String())
		}
		return buf.String()
	}
	base := out("direct")
	for _, transport := range []string{"http", "tcp"} {
		if got := out(transport); got != base {
			t.Errorf("selftest output differs for transport=%s:\n%s\nvs base:\n%s", transport, got, base)
		}
	}
}

// TestBenchTCPTransport: -bench works end to end over the binary
// protocol and reports the same deterministic hit rates as direct.
func TestBenchTCPTransport(t *testing.T) {
	out := func(transport string) string {
		var buf, errbuf bytes.Buffer
		args := []string{"-bench", "-bench-profiles", "mcf", "-sets", "64", "-ways", "4",
			"-bench-warmup", "500", "-bench-ops", "1000", "-transport", transport}
		if code := run(context.Background(), args, &buf, &errbuf); code != 0 {
			t.Fatalf("bench(transport=%s) = %d, stderr: %s", transport, code, errbuf.String())
		}
		// The header names the transport; strip it before comparing the
		// numbers, which must be transport-invariant.
		_, rest, ok := strings.Cut(buf.String(), "\n")
		if !ok {
			t.Fatalf("bench output has no header:\n%s", buf.String())
		}
		return rest
	}
	if direct, tcp := out("direct"), out("tcp"); direct != tcp {
		t.Errorf("bench numbers differ between transports:\n%s\nvs\n%s", direct, tcp)
	}
}

func TestProtoBenchSmoke(t *testing.T) {
	var buf, errbuf bytes.Buffer
	args := []string{"-proto-bench", "-proto-ops", "800", "-sets", "64", "-ways", "4",
		"-batch", "16", "-pipeline", "4"}
	if code := run(context.Background(), args, &buf, &errbuf); code != 0 {
		t.Fatalf("proto-bench run = %d, stderr: %s", code, errbuf.String())
	}
	out := buf.String()
	for _, want := range []string{"proto bench:", "http", "binary", "throughput ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("proto-bench output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"bad flag", []string{"-nope"}, 2},
		{"positional args", []string{"extra"}, 2},
		{"bad policy", []string{"-selftest", "10", "-policy", "fifo"}, 2},
		{"bad geometry", []string{"-selftest", "10", "-sets", "100"}, 2},
		{"bad profile", []string{"-selftest", "10", "-profile", "nope"}, 1},
		{"bad bench profile", []string{"-bench", "-bench-profiles", "nope"}, 1},
		{"bad transport", []string{"-selftest", "10", "-transport", "carrier-pigeon"}, 2},
		{"bad proto-bench profile", []string{"-proto-bench", "-profile", "nope"}, 1},
	} {
		var out, errbuf bytes.Buffer
		if code := run(context.Background(), tc.args, &out, &errbuf); code != tc.want {
			t.Errorf("%s: run = %d, want %d (stderr: %s)", tc.name, code, tc.want, errbuf.String())
		}
	}
}
