package main

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rwp/internal/snap"
)

// selftestArgs is the shared geometry for the restart-equivalence CLI
// tests; small enough to keep the runs fast, big enough for RWP
// retargets to fire.
func selftestArgs(extra ...string) []string {
	base := []string{"-sets", "128", "-ways", "4", "-interval", "32", "-profile", "mcf"}
	return append(base, extra...)
}

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(context.Background(), args, &out, &errb)
	return out.String(), errb.String(), code
}

// TestSelftestRestartEquivalence is the acceptance criterion through
// the real flag surface: snapshot a 12k-op selftest, resume it with
// -restore/-selftest-skip to op 20k — at a different shard count — and
// the printed stats JSON must be byte-identical to one uninterrupted
// 20k-op run.
func TestSelftestRestartEquivalence(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "warm.snap")

	base, errb, code := runCLI(t, selftestArgs("-selftest", "20000", "-shards", "1")...)
	if code != 0 {
		t.Fatalf("baseline run = %d, stderr: %s", code, errb)
	}
	_, errb, code = runCLI(t, selftestArgs("-selftest", "12000", "-shards", "4", "-snapshot", snapPath)...)
	if code != 0 {
		t.Fatalf("warm run = %d, stderr: %s", code, errb)
	}
	for _, shards := range []string{"1", "4", "32"} {
		got, errb, code := runCLI(t, selftestArgs("-selftest", "20000", "-selftest-skip", "12000",
			"-shards", shards, "-restore", snapPath)...)
		if code != 0 {
			t.Fatalf("resumed run (shards=%s) = %d, stderr: %s", shards, code, errb)
		}
		if strings.Contains(errb, "starting cold") {
			t.Fatalf("resumed run (shards=%s) fell back to cold: %s", shards, errb)
		}
		if got != base {
			t.Errorf("resumed output (shards=%s) differs from uninterrupted run:\n%s\nvs\n%s", shards, got, base)
		}
	}

	// Fixed point through the CLI: skip == selftest restores, replays
	// nothing, and re-snapshots; the file must reproduce byte-for-byte
	// even at a different shard count.
	again := filepath.Join(filepath.Dir(snapPath), "again.snap")
	_, errb, code = runCLI(t, selftestArgs("-selftest", "12000", "-selftest-skip", "12000",
		"-shards", "32", "-restore", snapPath, "-snapshot", again)...)
	if code != 0 {
		t.Fatalf("fixed-point run = %d, stderr: %s", code, errb)
	}
	want, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(again)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("re-snapshot is not a fixed point: %d vs %d bytes", len(want), len(got))
	}
}

// TestRestoreBadSnapshotStartsCold: a truncated or missing snapshot is
// logged and ignored — exit 0, cold-start output.
func TestRestoreBadSnapshotStartsCold(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "warm.snap")
	_, errb, code := runCLI(t, selftestArgs("-selftest", "2000", "-snapshot", snapPath)...)
	if code != 0 {
		t.Fatalf("warm run = %d, stderr: %s", code, errb)
	}
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.snap")
	if err := os.WriteFile(trunc, data[:256], 0o644); err != nil {
		t.Fatal(err)
	}

	base, _, code := runCLI(t, selftestArgs("-selftest", "2000")...)
	if code != 0 {
		t.Fatal("cold baseline failed")
	}
	for _, path := range []string{trunc, filepath.Join(dir, "missing.snap")} {
		got, errb, code := runCLI(t, selftestArgs("-selftest", "2000", "-restore", path)...)
		if code != 0 {
			t.Fatalf("restore %s: exit %d, stderr: %s", path, code, errb)
		}
		if !strings.Contains(errb, "starting cold") {
			t.Errorf("restore %s: stderr missing 'starting cold': %s", path, errb)
		}
		if got != base {
			t.Errorf("restore %s: output differs from cold run", path)
		}
	}
}

// TestRestoreGeometryMismatchStartsCold: a valid snapshot of the wrong
// geometry is a cold start, not a crash or a partial restore.
func TestRestoreGeometryMismatchStartsCold(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "warm.snap")
	if _, errb, code := runCLI(t, selftestArgs("-selftest", "2000", "-snapshot", snapPath)...); code != 0 {
		t.Fatalf("warm run = %d, stderr: %s", code, errb)
	}
	_, errb, code := runCLI(t, "-sets", "64", "-ways", "4", "-interval", "32",
		"-profile", "mcf", "-selftest", "100", "-restore", snapPath)
	if code != 0 || !strings.Contains(errb, "starting cold") {
		t.Fatalf("geometry mismatch: exit %d, stderr: %s", code, errb)
	}
}

// syncBuffer is a goroutine-safe writer for watching serve-mode output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) wait(t *testing.T, substr string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s := b.String(); strings.Contains(s, substr) {
			return s
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %q in output:\n%s", substr, b.String())
	return ""
}

// TestServeShutdownSnapshot runs serve mode end to end: drive HTTP
// traffic with op-count checkpoints enabled, shut down gracefully, and
// verify both the checkpoint and the final snapshot are valid and that
// the final one reflects all traffic.
func TestServeShutdownSnapshot(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "serve.snap")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-sets", "64", "-ways", "4",
			"-snapshot", snapPath, "-snap-every", "10"}, &out, &errb)
	}()
	listening := out.wait(t, "listening on http://")
	_, rest, _ := strings.Cut(listening, "http://")
	url := "http://" + strings.TrimSpace(strings.Split(rest, "\n")[0])

	for i := 0; i < 40; i++ {
		resp, err := http.Get(url + "/get?key=serve-key")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// A checkpoint boundary has passed; wait for the async write.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := snap.ReadFile(snapPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint snapshot never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	if code := <-done; code != 0 {
		t.Fatalf("serve run = %d, stderr: %s", code, errb.String())
	}
	out.wait(t, "snapshot written to")
	s, err := snap.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("shutdown snapshot: %v", err)
	}
	var gets uint64
	for i := range s.Records {
		gets += s.Records[i].Ops.Gets
	}
	if gets != 40 {
		t.Errorf("shutdown snapshot records %d gets, want 40", gets)
	}
}

// TestSnapshotFlagErrors pins the flag-combination validation.
func TestSnapshotFlagErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"snapshot with bench", []string{"-bench", "-snapshot", "x.snap"}},
		{"restore with proto-bench", []string{"-proto-bench", "-restore", "x.snap"}},
		{"snap-every without snapshot", []string{"-snap-every", "100"}},
		{"snap-every with selftest", []string{"-selftest", "100", "-snapshot", "x.snap", "-snap-every", "10"}},
		{"negative skip", []string{"-selftest", "100", "-selftest-skip", "-1"}},
		{"skip past end", []string{"-selftest", "100", "-selftest-skip", "101"}},
	} {
		if _, _, code := runCLI(t, tc.args...); code != 2 {
			t.Errorf("%s: run = %d, want 2", tc.name, code)
		}
	}
}
