package main

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"rwp/internal/live"
	"rwp/internal/live/loadgen"
	"rwp/internal/live/proto"
)

// TestStressConcurrentTCP hammers one tcpServer with many pipelined
// binary clients at once (run under -race by scripts/check.sh), each
// with its own seed, batch size, and pipeline depth, then checks
// counter conservation the same way internal/live's stress test does:
// every op that left a client is accounted for in the aggregate, and a
// full structural recount (CheckInvariants) agrees with the
// incremental counters.
func TestStressConcurrentTCP(t *testing.T) {
	const clients = 8
	opsPer := 5_000
	if testing.Short() {
		opsPer = 1_000
	}

	cfg := live.DefaultConfig()
	cfg.Sets, cfg.Ways, cfg.Shards = 128, 4, 8
	cfg.Record = true
	cfg.Loader = loadgen.Loader(0)
	c, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tsrv := newTCPServer(ln, c, io.Discard)
	go tsrv.serve()
	defer tsrv.shutdownNow()

	var sentGets, sentPuts atomic.Uint64
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- func() error {
				g, err := loadgen.New("mcf", uint64(i), 0)
				if err != nil {
					return err
				}
				conn, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					return err
				}
				defer conn.Close()
				cli := proto.NewClient(conn)
				// Every client uses a different framing shape; the
				// aggregate must not care.
				batch := 1 << (i % 6) // 1..32 ops per frame
				depth := 1 + i%5      // 1..5 frames per flush
				for _, run := range loadgen.Runs(g.Batch(opsPer), batch) {
					var err error
					if run[0].Put {
						kvs := make([]proto.KV, len(run))
						for j, op := range run {
							kvs[j] = proto.KV{Key: op.Key, Value: op.Value}
						}
						sentPuts.Add(uint64(len(run)))
						err = cli.QueueMPut(kvs)
					} else {
						keys := make([]string, len(run))
						for j, op := range run {
							keys[j] = op.Key
						}
						sentGets.Add(uint64(len(run)))
						err = cli.QueueMGet(keys)
					}
					if err != nil {
						return err
					}
					if cli.Depth() >= depth {
						if _, err := cli.Flush(); err != nil {
							return err
						}
					}
				}
				_, err = cli.Flush()
				return err
			}()
		}(i)
	}

	// A concurrent STATS poller on its own connection exercises the
	// snapshot path against the writers.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		cli := proto.NewClient(conn)
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := cli.Stats(); err != nil {
					return
				}
			}
		}
	}()

	wg.Wait()
	close(stop)
	rg.Wait()
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	s := c.Stats()
	if s.Gets != sentGets.Load() || s.Puts != sentPuts.Load() {
		t.Fatalf("ops lost in transit: server saw %d/%d gets/puts, clients sent %d/%d",
			s.Gets, s.Puts, sentGets.Load(), sentPuts.Load())
	}
	if got := s.Gets + s.Puts; got != clients*uint64(opsPer) {
		t.Fatalf("ops lost: gets+puts = %d, want %d", got, clients*opsPer)
	}
	if s.GetHits+s.GetMisses != s.Gets {
		t.Errorf("get split broken: %d+%d != %d", s.GetHits, s.GetMisses, s.Gets)
	}
	if s.PutHits+s.PutInserts != s.Puts {
		t.Errorf("put split broken: %d+%d != %d", s.PutHits, s.PutInserts, s.Puts)
	}
	// The stampede conservation law (the defense counters are zero with
	// the defenses off, but the law is the same six-term identity).
	if s.Loads+s.LoadRaces+s.LoadAbsents+s.CoalescedLoads+s.NegHits+s.NegInserts != s.GetMisses {
		t.Errorf("loader misses: loads %d + races %d + absents %d + coalesced %d + neg %d/%d != get misses %d",
			s.Loads, s.LoadRaces, s.LoadAbsents, s.CoalescedLoads, s.NegHits, s.NegInserts, s.GetMisses)
	}
	if s.Fills != s.PutInserts+s.Loads {
		t.Errorf("fill conservation broken: %d != %d+%d", s.Fills, s.PutInserts, s.Loads)
	}
	if got := uint64(s.Entries); got != s.Fills-s.Evictions {
		t.Errorf("occupancy broken: entries %d != fills %d - evictions %d", s.Entries, s.Fills, s.Evictions)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
