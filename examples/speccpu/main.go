// speccpu sweeps the whole synthetic SPEC-CPU2006-like suite under every
// mechanism the paper compares (LRU, DIP, DRRIP, SHiP, RWP, RRP) and
// prints a per-benchmark speedup matrix over LRU — the shape of the
// paper's Figure 7/8.
//
// This runs ~170 simulations; expect a couple of minutes. Pass -fast for
// a shorter, noisier sweep.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"rwp"
)

func main() {
	fast := flag.Bool("fast", false, "shorter runs (noisier)")
	flag.Parse()

	cfg := rwp.Config{}
	if *fast {
		cfg.Warmup = 100_000
		cfg.Measure = 300_000
	}
	policies := []string{"dip", "drrip", "ship", "rwp", "rrp"}

	fmt.Printf("%-12s %-6s", "bench", "class")
	for _, p := range policies {
		fmt.Printf(" %8s", p)
	}
	fmt.Println()

	logsum := map[string]float64{}
	logsumSens := map[string]float64{}
	nSens := 0
	workloads := rwp.Workloads()
	for _, w := range workloads {
		base := cfg
		base.Policy = "lru"
		lru, err := rwp.Run(w.Name, base)
		if err != nil {
			log.Fatal(err)
		}
		class := "insens"
		if w.CacheSensitive {
			class = "SENS"
			nSens++
		}
		fmt.Printf("%-12s %-6s", w.Name, class)
		for _, p := range policies {
			c := cfg
			c.Policy = p
			r, err := rwp.Run(w.Name, c)
			if err != nil {
				log.Fatal(err)
			}
			sp := r.IPC / lru.IPC
			logsum[p] += math.Log(sp)
			if w.CacheSensitive {
				logsumSens[p] += math.Log(sp)
			}
			fmt.Printf(" %+7.1f%%", (sp-1)*100)
		}
		fmt.Println()
	}

	fmt.Printf("\n%-19s", "geomean (all)")
	for _, p := range policies {
		fmt.Printf(" %+7.1f%%", (math.Exp(logsum[p]/float64(len(workloads)))-1)*100)
	}
	fmt.Printf("\n%-19s", "geomean (sensitive)")
	for _, p := range policies {
		fmt.Printf(" %+7.1f%%", (math.Exp(logsumSens[p]/float64(nSens))-1)*100)
	}
	fmt.Println()
}
