// phases watches RWP's dirty-partition target adapt live across program
// phases: a producer-consumer phase whose dirty lines serve reads
// (cactusADM) followed by a clean-read phase with write-once output
// (sphinx3). The per-window series shows the partition growing, then
// collapsing, and the read-miss rate responding.
package main

import (
	"fmt"
	"log"

	"rwp"
)

func main() {
	phases := []string{"cactusADM", "sphinx3"}
	cfg := rwp.Config{Policy: "rwp", Warmup: 300_000, Measure: 1_000_000}
	const window = 100_000

	res, series, err := rwp.RunPhases(phases, cfg, window)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("phases: %v (boundary at access %d)\n\n", phases, cfg.Measure)
	fmt.Printf("%12s %8s %12s %14s\n", "access", "IPC", "read MPKI", "dirty target")
	for _, p := range series {
		marker := ""
		if p.EndAccess == cfg.Measure {
			marker = "  <- phase boundary"
		}
		fmt.Printf("%12d %8.3f %12.2f %9d/16 %s\n",
			p.EndAccess, p.IPC, p.ReadMPKI, p.DirtyTarget, marker)
	}
	fmt.Printf("\noverall: IPC=%.3f read MPKI=%.2f\n", res.IPC, res.ReadMPKI)
	fmt.Println("\nThe dirty target sits high while written blocks are being read back,")
	fmt.Println("then shrinks once writes become write-once output traffic.")
}
