// multicore reproduces the paper's 4-core scenario on one mix: four
// workloads share a 4 MiB LLC; the example reports per-core IPC, system
// throughput and weighted speedup for LRU, UCP and RWP.
package main

import (
	"fmt"
	"log"

	"rwp"
)

func main() {
	mix := []string{"sphinx3", "dealII", "gobmk", "namd"}
	cfg := rwp.Config{LLCBytes: 4 << 20}

	// Solo IPCs on the same shared-LLC geometry, for weighted speedup.
	alone := make([]float64, len(mix))
	for i, name := range mix {
		c := cfg
		c.Policy = "lru"
		r, err := rwp.Run(name, c)
		if err != nil {
			log.Fatal(err)
		}
		alone[i] = r.IPC
	}

	fmt.Printf("mix: %v (4 MiB shared LLC)\n\n", mix)
	fmt.Printf("%-8s", "policy")
	for _, name := range mix {
		fmt.Printf(" %10s", name)
	}
	fmt.Printf(" %12s %10s\n", "throughput", "wtd spd")

	var lruTP float64
	for _, pol := range []string{"lru", "ucp", "rwp"} {
		c := cfg
		c.Policy = pol
		res, err := rwp.RunMix(mix, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s", pol)
		for _, r := range res.PerCore {
			fmt.Printf(" %10.3f", r.IPC)
		}
		fmt.Printf(" %12.3f %10.3f", res.Throughput, res.WeightedSpeedup(alone))
		if pol == "lru" {
			lruTP = res.Throughput
		} else {
			fmt.Printf("  (%+.1f%% vs lru)", (res.Throughput/lruTP-1)*100)
		}
		fmt.Println()
	}
	fmt.Println("\nRWP grows each partition only as far as its read hits justify, so")
	fmt.Println("write traffic from one core cannot crowd out another core's reads.")
}
