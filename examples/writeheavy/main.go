// writeheavy demonstrates the paper's motivating observation from the
// workload side: it generates traces, classifies their reference mix, and
// shows how LLC capacity sensitivity interacts with write-once traffic.
//
// It also demonstrates the trace tooling of the public API: traces are
// generated to an in-memory buffer in the binary codec and summarized
// back — the same path `rwptrace -gen`/`-info` uses on files.
package main

import (
	"bytes"
	"fmt"
	"log"

	"rwp"
)

func main() {
	benches := []string{"lbm", "gcc", "sphinx3", "namd"}

	fmt.Println("1. What the traces look like (100k accesses each):")
	fmt.Printf("%-10s %10s %10s %14s\n", "bench", "reads", "writes", "footprint")
	for _, b := range benches {
		var buf bytes.Buffer
		if _, err := rwp.WriteTrace(&buf, b, 100_000); err != nil {
			log.Fatal(err)
		}
		sum, err := rwp.ReadTraceSummary(&buf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %9.1f%% %9.1f%% %11.1f MiB\n",
			b, sum.ReadRatio*100, (1-sum.ReadRatio)*100,
			float64(sum.Lines)*64/(1<<20))
	}

	fmt.Println("\n2. Where the write traffic hurts — and what RWP recovers:")
	fmt.Printf("%-10s %12s %12s %12s\n", "bench", "LRU rdMPKI", "RWP rdMPKI", "speedup")
	for _, b := range benches {
		lru, err := rwp.Run(b, rwp.Config{Policy: "lru"})
		if err != nil {
			log.Fatal(err)
		}
		res, err := rwp.Run(b, rwp.Config{Policy: "rwp"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.2f %12.2f %+11.1f%%\n",
			b, lru.ReadMPKI, res.ReadMPKI, (res.IPC/lru.IPC-1)*100)
	}

	fmt.Println("\nlbm streams writes no policy can cache (insensitive); gcc and")
	fmt.Println("sphinx3 mix reusable reads with write-once output, which is exactly")
	fmt.Println("where partitioning reclaims capacity; namd fits in cache entirely.")
}
