// Quickstart: run one cache-sensitive benchmark under the baseline LRU
// policy and under Read-Write Partitioning, and compare the metrics the
// paper's headline result is built from.
package main

import (
	"fmt"
	"log"

	"rwp"
)

func main() {
	const bench = "sphinx3"

	lru, err := rwp.Run(bench, rwp.Config{Policy: "lru"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := rwp.Run(bench, rwp.Config{Policy: "rwp"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark: %s (2 MiB 16-way LLC)\n\n", bench)
	fmt.Printf("%-8s %8s %12s %14s\n", "policy", "IPC", "read MPKI", "LLC read hit")
	for _, r := range []rwp.Result{lru, res} {
		fmt.Printf("%-8s %8.3f %12.2f %13.1f%%\n",
			r.Policy, r.IPC, r.ReadMPKI, r.LLCReadHitRate*100)
	}
	fmt.Printf("\nRWP speedup over LRU: %+.1f%%\n", (res.IPC/lru.IPC-1)*100)
	fmt.Printf("read misses removed:  %+.1f%%\n", (1-res.ReadMPKI/lru.ReadMPKI)*100)
	fmt.Println("\nRWP keeps lines that serve reads and sacrifices write-only lines;")
	fmt.Println("read misses stall the core, so fewer of them is direct speedup.")
}
