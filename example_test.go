package rwp_test

import (
	"bytes"
	"fmt"
	"log"

	"rwp"
)

// The canonical comparison: one benchmark under the baseline LRU policy
// and under Read-Write Partitioning.
func ExampleRun() {
	lru, err := rwp.Run("sphinx3", rwp.Config{Policy: "lru"})
	if err != nil {
		log.Fatal(err)
	}
	res, err := rwp.Run("sphinx3", rwp.Config{Policy: "rwp"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RWP speedup over LRU: %+.0f%%\n", (res.IPC/lru.IPC-1)*100)
	fmt.Printf("read misses removed:  %+.0f%%\n", (1-res.ReadMPKI/lru.ReadMPKI)*100)
}

// Four workloads share a 4 MiB LLC, the paper's multi-core setup.
func ExampleRunMix() {
	mix := []string{"sphinx3", "dealII", "gobmk", "namd"}
	res, err := rwp.RunMix(mix, rwp.Config{Policy: "rwp"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system throughput: %.2f IPC across %d cores\n",
		res.Throughput, len(res.PerCore))
}

// Traces round-trip through the binary codec: record a workload, then
// replay it bit-identically.
func ExampleRunTrace() {
	var buf bytes.Buffer
	if _, err := rwp.WriteTrace(&buf, "bzip2", 1_000_000); err != nil {
		log.Fatal(err)
	}
	res, err := rwp.RunTrace("bzip2", &buf, rwp.Config{
		Policy: "rwp", Warmup: 200_000, Measure: 800_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %s: IPC %.2f\n", res.Workload, res.IPC)
}

// Watch RWP's dirty-partition target adapt across program phases.
func ExampleRunPhases() {
	cfg := rwp.Config{Policy: "rwp", Warmup: 200_000, Measure: 600_000}
	_, series, err := rwp.RunPhases([]string{"cactusADM", "sphinx3"}, cfg, 200_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dirty target: %d/16 during dirty-read phase, %d/16 after\n",
		series[1].DirtyTarget, series[len(series)-1].DirtyTarget)
}

// Reproduce the paper's storage claim: RWP at a few percent of RRP.
func ExampleStateOverhead() {
	rwpBits, _, err := rwp.StateOverhead("rwp", rwp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rrpBits, _, err := rwp.StateOverhead("rrp", rwp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RWP needs %.1f%% of RRP's state\n", 100*float64(rwpBits)/float64(rrpBits))
	// Output: RWP needs 4.1% of RRP's state
}
