// Package rwp is a trace-driven cache-hierarchy simulator built around
// Read-Write Partitioning (RWP), reproducing "Improving cache performance
// using read-write partitioning" (Khan, Alameldeen, Wilkerson, Mutlu,
// Jiménez — HPCA 2014).
//
// The package is the public facade over the simulator: it runs named
// synthetic SPEC-CPU2006-like workloads through a core timing model and
// an L1D/L2/LLC/DRAM hierarchy whose last-level replacement policy is
// selectable — the paper's RWP, its RRP comparison point, and the
// LRU/DIP/DRRIP/SHiP/UCP baselines.
//
// Quick start:
//
//	res, err := rwp.Run("mcf", rwp.Config{Policy: "rwp"})
//	base, err := rwp.Run("mcf", rwp.Config{Policy: "lru"})
//	fmt.Printf("speedup: %.2fx\n", res.IPC/base.IPC)
//
// See examples/ for runnable programs and cmd/rwpexp for the full
// reproduction of the paper's tables and figures.
package rwp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"rwp/internal/core"
	"rwp/internal/hier"
	"rwp/internal/overhead"
	"rwp/internal/policy"
	"rwp/internal/rrp"
	"rwp/internal/sim"
	"rwp/internal/stats"
	"rwp/internal/trace"
	"rwp/internal/workload"
)

// Config selects the system under test. The zero value of any field
// falls back to the paper-style default (LRU policy, 2 MiB 16-way LLC
// for single-core runs, 4 MiB for mixes, 0.5 M warmup and 2 M measured
// accesses).
type Config struct {
	// Policy names the LLC replacement mechanism; see Policies().
	Policy string
	// LLCBytes overrides the last-level cache capacity.
	LLCBytes int
	// LLCWays overrides the associativity.
	LLCWays int
	// Warmup is the number of accesses (per core) before stats reset.
	Warmup uint64
	// Measure is the number of accesses (per core) in the measured
	// region.
	Measure uint64
	// Seed offsets the synthetic workloads' random streams: the same
	// behaviors and footprints, a different concrete access sequence.
	// Zero is the canonical run; robustness checks sweep a few values.
	Seed uint64
}

func (c Config) options(cores int) (sim.Options, error) {
	opt := sim.DefaultOptions()
	if cores > 1 {
		opt.Hier = hier.MulticoreConfig(cores)
	}
	if c.Policy != "" {
		opt.Hier.LLCPolicy = c.Policy
	}
	if c.LLCBytes > 0 {
		opt.Hier.LLC.SizeBytes = c.LLCBytes
	}
	if c.LLCWays > 0 {
		opt.Hier.LLC.Ways = c.LLCWays
	}
	if c.Warmup > 0 {
		opt.Warmup = c.Warmup
	}
	if c.Measure > 0 {
		opt.Measure = c.Measure
	}
	return opt, opt.Validate()
}

// Result summarizes one core's measured region.
type Result struct {
	// Workload and Policy label the run.
	Workload string
	Policy   string
	// IPC is instructions per cycle over the measured region.
	IPC float64
	// Instructions and Cycles are the measured-region totals.
	Instructions uint64
	Cycles       uint64
	// ReadMPKI is LLC demand-load misses per kilo-instruction — the
	// quantity RWP minimizes.
	ReadMPKI float64
	// TotalMPKI counts all LLC misses per kilo-instruction.
	TotalMPKI float64
	// WritebacksPKI is DRAM write traffic per kilo-instruction.
	WritebacksPKI float64
	// LLCReadHitRate is demand-load hits / demand-load accesses at the
	// LLC (0 when the LLC saw no demand loads).
	LLCReadHitRate float64
}

func fromSim(r sim.Result) Result {
	out := Result{
		Workload:      r.Workload,
		Policy:        r.Policy,
		IPC:           r.IPC,
		Instructions:  r.Instructions,
		Cycles:        r.Core.Cycles,
		ReadMPKI:      r.ReadMPKI,
		TotalMPKI:     r.TotalMPKI,
		WritebacksPKI: r.WBPKI,
	}
	if acc := r.LLC.ReadAccesses(); acc > 0 {
		out.LLCReadHitRate = float64(acc-r.LLC.ReadMisses()) / float64(acc)
	}
	return out
}

// Run simulates one named workload on a single-core system.
func Run(workloadName string, cfg Config) (Result, error) {
	prof, err := workload.Get(workloadName)
	if err != nil {
		return Result{}, err
	}
	prof = prof.WithSeed(cfg.Seed)
	opt, err := cfg.options(1)
	if err != nil {
		return Result{}, err
	}
	r, err := sim.RunSingle(prof, opt)
	if err != nil {
		return Result{}, err
	}
	return fromSim(r), nil
}

// MixResult summarizes a multiprogrammed run.
type MixResult struct {
	Policy string
	// PerCore holds each core's result in mix order.
	PerCore []Result
	// Throughput is Σ per-core IPC (the paper's system-throughput
	// metric).
	Throughput float64
}

// WeightedSpeedup computes Σ IPC_shared/IPC_alone against the supplied
// solo IPCs (same order as the mix).
func (m MixResult) WeightedSpeedup(alone []float64) float64 {
	ipcs := make([]float64, len(m.PerCore))
	for i, r := range m.PerCore {
		ipcs[i] = r.IPC
	}
	return stats.WeightedSpeedup(ipcs, alone)
}

// RunMix simulates one workload per core on a shared-LLC system (the
// paper's 4-core configuration when given four names).
func RunMix(workloadNames []string, cfg Config) (MixResult, error) {
	profs := make([]workload.Profile, len(workloadNames))
	for i, n := range workloadNames {
		p, err := workload.Get(n)
		if err != nil {
			return MixResult{}, err
		}
		profs[i] = p.WithSeed(cfg.Seed)
	}
	opt, err := cfg.options(len(workloadNames))
	if err != nil {
		return MixResult{}, err
	}
	mr, err := sim.RunMulti(profs, opt)
	if err != nil {
		return MixResult{}, err
	}
	out := MixResult{Policy: mr.Policy, Throughput: mr.Throughput()}
	for _, r := range mr.PerCore {
		out.PerCore = append(out.PerCore, fromSim(r))
	}
	return out, nil
}

// IntervalPoint is one window of a phased time-series run.
type IntervalPoint struct {
	// EndAccess is the measured-access count at the window's end.
	EndAccess uint64
	// IPC and ReadMPKI over the window.
	IPC      float64
	ReadMPKI float64
	// DirtyTarget is RWP's dirty-partition size at the window's end
	// (-1 for non-RWP policies).
	DirtyTarget int
}

// RunPhases concatenates the named workloads into one phased execution
// (each phase contributing Measure accesses, the first also preceded by
// the warmup) and returns the per-window time series alongside the
// overall result. It is the public face of the paper's partition-
// dynamics experiment (E8): watch DirtyTarget adapt as phases change.
func RunPhases(workloadNames []string, cfg Config, window uint64) (Result, []IntervalPoint, error) {
	if len(workloadNames) == 0 {
		return Result{}, nil, fmt.Errorf("rwp: RunPhases needs at least one workload")
	}
	opt, err := cfg.options(1)
	if err != nil {
		return Result{}, nil, err
	}
	srcs := make([]trace.Source, len(workloadNames))
	label := ""
	for i, n := range workloadNames {
		prof, err := workload.Get(n)
		if err != nil {
			return Result{}, nil, err
		}
		prof = prof.WithSeed(cfg.Seed)
		limit := opt.Measure
		if i == 0 {
			limit += opt.Warmup
		}
		srcs[i] = trace.NewLimit(prof.NewSource(), limit)
		if i > 0 {
			label += "+"
		}
		label += n
	}
	opt.Measure = opt.Measure * uint64(len(workloadNames))
	res, series, err := sim.RunSourceIntervals(label, trace.NewConcat(srcs...), opt, window)
	if err != nil {
		return Result{}, nil, err
	}
	out := make([]IntervalPoint, len(series))
	for i, iv := range series {
		out[i] = IntervalPoint{
			EndAccess:   iv.EndAccess,
			IPC:         iv.IPC,
			ReadMPKI:    iv.ReadMPKI,
			DirtyTarget: iv.DirtyTarget,
		}
	}
	return fromSim(res), out, nil
}

// WorkloadInfo describes one synthetic benchmark.
type WorkloadInfo struct {
	Name string
	// CacheSensitive marks membership in the paper's cache-sensitive
	// subset.
	CacheSensitive bool
	// MemIntensity is memory references per instruction.
	MemIntensity float64
}

// Workloads enumerates the benchmark suite, sorted by name.
func Workloads() []WorkloadInfo {
	var out []WorkloadInfo
	for _, p := range workload.All() {
		out = append(out, WorkloadInfo{
			Name:           p.Name,
			CacheSensitive: p.CacheSensitive,
			MemIntensity:   p.MemIntensity,
		})
	}
	return out
}

// Policies lists the selectable LLC mechanisms, sorted by name.
// Hyphenated registrations (experiment instrumentation and ablation
// variants like "rwp-static-4") are internal and filtered out, though
// Config.Policy accepts them when the experiments package is linked in.
func Policies() []string {
	names := policy.Names()
	out := names[:0]
	for _, n := range names {
		if strings.Contains(n, "-") {
			continue
		}
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RunTrace simulates a recorded binary trace (as produced by WriteTrace
// or rwptrace) on a single-core system. The trace must be longer than
// the configured warmup; the measured region ends at the trace's end or
// at Warmup+Measure accesses, whichever comes first.
func RunTrace(name string, r io.Reader, cfg Config) (Result, error) {
	opt, err := cfg.options(1)
	if err != nil {
		return Result{}, err
	}
	res, err := sim.RunSource(name, trace.NewReader(r), opt)
	if err != nil {
		return Result{}, err
	}
	return fromSim(res), nil
}

// WriteTrace generates n accesses of the named workload in the binary
// trace format (decodable with ReadTraceSummary or internal/trace).
func WriteTrace(w io.Writer, workloadName string, n uint64) (uint64, error) {
	prof, err := workload.Get(workloadName)
	if err != nil {
		return 0, err
	}
	return trace.WriteAll(w, trace.NewLimit(prof.NewSource(), n))
}

// TraceSummary reports the aggregate shape of a binary trace.
type TraceSummary struct {
	Accesses     uint64
	Loads        uint64
	Stores       uint64
	Lines        uint64
	Instructions uint64
	ReadRatio    float64
}

// ReadTraceSummary decodes a binary trace and summarizes it.
func ReadTraceSummary(r io.Reader) (TraceSummary, error) {
	st, err := trace.Summarize(trace.NewReader(r))
	if err != nil {
		return TraceSummary{}, err
	}
	return TraceSummary{
		Accesses:     st.Accesses,
		Loads:        st.Loads,
		Stores:       st.Stores,
		Lines:        st.Lines,
		Instructions: st.Instructions,
		ReadRatio:    st.ReadRatio(),
	}, nil
}

// StateOverhead returns the hardware state cost, in bits, of a mechanism
// on the configured LLC, together with a human-readable breakdown.
// Supported mechanisms: lru, dip, drrip, ship, rwp, rrp.
func StateOverhead(policyName string, cfg Config) (bits uint64, breakdown string, err error) {
	llc := hier.DefaultConfig().LLC
	if cfg.LLCBytes > 0 {
		llc.SizeBytes = cfg.LLCBytes
	}
	if cfg.LLCWays > 0 {
		llc.Ways = cfg.LLCWays
	}
	if err := llc.Validate(); err != nil {
		return 0, "", err
	}
	var b overhead.Breakdown
	switch policyName {
	case "lru":
		b = overhead.LRU(llc)
	case "dip":
		b = overhead.DIP(llc, policy.DefaultPSELBits)
	case "drrip":
		b = overhead.DRRIP(llc, policy.DefaultRRPVBits, policy.DefaultPSELBits)
	case "ship":
		b = overhead.SHiP(llc, policy.DefaultRRPVBits, policy.DefaultSHCTBits, 3)
	case "rwp":
		b = overhead.RWP(llc, core.DefaultConfig())
	case "rrp":
		b = overhead.RRP(llc, rrp.DefaultConfig())
	default:
		return 0, "", fmt.Errorf("rwp: no overhead model for policy %q", policyName)
	}
	return b.TotalBits(), b.String(), nil
}
