package rwp

import (
	"bytes"
	"strings"
	"testing"
)

var fastCfg = Config{Warmup: 60_000, Measure: 200_000}

func TestRunSmoke(t *testing.T) {
	cfg := fastCfg
	cfg.Policy = "rwp"
	res, err := Run("gcc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Workload != "gcc" || res.Policy != "rwp" {
		t.Fatalf("bad result: %+v", res)
	}
	if res.LLCReadHitRate < 0 || res.LLCReadHitRate > 1 {
		t.Fatalf("hit rate %v", res.LLCReadHitRate)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run("nope", fastCfg); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	cfg := fastCfg
	cfg.Policy = "nope"
	if _, err := Run("gcc", cfg); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestRWPHeadlineOnOneBenchmark(t *testing.T) {
	base := fastCfg
	base.Policy = "lru"
	lru, err := Run("sphinx3", base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg
	cfg.Policy = "rwp"
	res, err := Run("sphinx3", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= lru.IPC {
		t.Fatalf("RWP IPC %.3f <= LRU %.3f on sphinx3", res.IPC, lru.IPC)
	}
	if res.ReadMPKI >= lru.ReadMPKI {
		t.Fatalf("RWP ReadMPKI %.2f >= LRU %.2f", res.ReadMPKI, lru.ReadMPKI)
	}
}

func TestRunMix(t *testing.T) {
	cfg := fastCfg
	cfg.Policy = "rwp"
	mix := []string{"gcc", "povray", "sphinx3", "namd"}
	res, err := RunMix(mix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 4 || res.Throughput <= 0 {
		t.Fatalf("bad mix result: %+v", res)
	}
	alone := []float64{1, 1, 1, 1}
	if ws := res.WeightedSpeedup(alone); ws != res.Throughput { //rwplint:allow floateq — exact: same summation order, division by 1 is exact
		t.Fatalf("weighted speedup with unit alone IPCs %.3f != throughput %.3f", ws, res.Throughput)
	}
}

func TestWorkloadsAndPolicies(t *testing.T) {
	ws := Workloads()
	if len(ws) < 20 {
		t.Fatalf("%d workloads", len(ws))
	}
	foundSensitive := false
	for _, w := range ws {
		if w.MemIntensity <= 0 {
			t.Errorf("%s has non-positive intensity", w.Name)
		}
		if w.CacheSensitive {
			foundSensitive = true
		}
	}
	if !foundSensitive {
		t.Error("no sensitive workloads listed")
	}
	ps := Policies()
	want := map[string]bool{"lru": true, "rwp": true, "rrp": true, "dip": true, "drrip": true, "ucp": true}
	for _, p := range ps {
		delete(want, p)
		if p == "e1-classifier" {
			t.Error("instrumentation policy leaked into Policies()")
		}
	}
	if len(want) != 0 {
		t.Errorf("missing policies: %v", want)
	}
}

func TestTraceRoundTripViaPublicAPI(t *testing.T) {
	var buf bytes.Buffer
	n, err := WriteTrace(&buf, "bzip2", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10_000 {
		t.Fatalf("wrote %d records", n)
	}
	sum, err := ReadTraceSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Accesses != 10_000 || sum.Loads+sum.Stores != sum.Accesses {
		t.Fatalf("summary wrong: %+v", sum)
	}
	if sum.ReadRatio <= 0 || sum.ReadRatio >= 1 {
		t.Fatalf("read ratio %v", sum.ReadRatio)
	}
}

func TestRunPhases(t *testing.T) {
	// Phases must be long enough for several 100k-access repartitioning
	// intervals each, or the target cannot adapt within the run.
	cfg := Config{Policy: "rwp", Warmup: 100_000, Measure: 500_000}
	res, series, err := RunPhases([]string{"cactusADM", "sphinx3"}, cfg, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatal("empty result")
	}
	want := int(2 * cfg.Measure / 100_000)
	if len(series) != want {
		t.Fatalf("%d intervals, want %d", len(series), want)
	}
	// The dirty target must be higher in the producer-consumer phase
	// than at the end of the clean phase.
	first := series[0].DirtyTarget
	last := series[len(series)-1].DirtyTarget
	if first <= last {
		t.Fatalf("dirty target did not shrink across phases: %d -> %d", first, last)
	}
	if _, _, err := RunPhases(nil, cfg, 1000); err == nil {
		t.Fatal("empty phase list accepted")
	}
	if _, _, err := RunPhases([]string{"nope"}, cfg, 1000); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunTraceMatchesRun(t *testing.T) {
	// A recorded trace replayed through RunTrace must reproduce the
	// generator-driven run exactly.
	cfg := fastCfg
	cfg.Policy = "rwp"
	direct, err := Run("bzip2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, "bzip2", cfg.Warmup+cfg.Measure); err != nil {
		t.Fatal(err)
	}
	replayed, err := RunTrace("bzip2", &buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if direct.IPC != replayed.IPC || direct.ReadMPKI != replayed.ReadMPKI { //rwplint:allow floateq — exact: bit-identity replay check
		t.Fatalf("replay diverged: IPC %v vs %v, MPKI %v vs %v",
			direct.IPC, replayed.IPC, direct.ReadMPKI, replayed.ReadMPKI)
	}
}

func TestRunTraceRejectsGarbage(t *testing.T) {
	if _, err := RunTrace("x", bytes.NewReader([]byte("junk")), fastCfg); err == nil {
		t.Fatal("garbage trace accepted")
	}
}

func TestStateOverheadAPI(t *testing.T) {
	rwpBits, desc, err := StateOverhead("rwp", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "sampler") {
		t.Errorf("breakdown missing sampler: %s", desc)
	}
	rrpBits, _, err := StateOverhead("rrp", Config{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rwpBits) / float64(rrpBits)
	if ratio <= 0 || ratio > 0.10 {
		t.Fatalf("RWP/RRP = %.4f, want the paper's ~5%% regime", ratio)
	}
	if _, _, err := StateOverhead("nope", Config{}); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	if _, _, err := StateOverhead("lru", Config{LLCBytes: 12345}); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestWriteTraceErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, "nope", 10); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := ReadTraceSummary(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage summary accepted")
	}
}

func TestStateOverheadAllMechanisms(t *testing.T) {
	for _, pol := range []string{"lru", "dip", "drrip", "ship", "rwp", "rrp"} {
		bits, desc, err := StateOverhead(pol, Config{})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if bits == 0 || desc == "" {
			t.Fatalf("%s: empty accounting", pol)
		}
	}
	// Geometry overrides flow through.
	small, _, err := StateOverhead("lru", Config{LLCBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := StateOverhead("lru", Config{LLCBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatal("larger LLC did not cost more recency state")
	}
}

func TestSeedRobustness(t *testing.T) {
	// Different seeds change the concrete access stream but not the
	// workload's character: RWP's advantage on sphinx3 must hold across
	// seeds, and the streams must actually differ.
	var ipcs []float64
	for _, seed := range []uint64{0, 1, 2} {
		base := fastCfg
		base.Policy = "lru"
		base.Seed = seed
		lru, err := Run("sphinx3", base)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastCfg
		cfg.Policy = "rwp"
		cfg.Seed = seed
		res, err := Run("sphinx3", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.IPC <= lru.IPC {
			t.Fatalf("seed %d: RWP %.3f <= LRU %.3f", seed, res.IPC, lru.IPC)
		}
		ipcs = append(ipcs, res.IPC)
	}
	if ipcs[0] == ipcs[1] && ipcs[1] == ipcs[2] { //rwplint:allow floateq — exact: detecting bit-identical results is the point
		t.Fatal("seed offsets did not change the stream")
	}
}

func TestConfigOverridesApply(t *testing.T) {
	small := fastCfg
	small.Policy = "lru"
	small.LLCBytes = 1 << 20
	rSmall, err := Run("sphinx3", small)
	if err != nil {
		t.Fatal(err)
	}
	big := small
	big.LLCBytes = 8 << 20
	rBig, err := Run("sphinx3", big)
	if err != nil {
		t.Fatal(err)
	}
	if rBig.ReadMPKI >= rSmall.ReadMPKI {
		t.Fatalf("8 MiB MPKI %.2f >= 1 MiB MPKI %.2f; size override ignored?", rBig.ReadMPKI, rSmall.ReadMPKI)
	}
}
