// Benchmarks regenerating every table and figure of the paper (one
// Benchmark per experiment; see DESIGN.md §5 for the index), plus
// micro-benchmarks of the simulator's hot paths.
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks run the Quick scale and report the headline
// metric of their table/figure via b.ReportMetric (suffix tells the
// unit); cmd/rwpexp -scale full regenerates the full-fidelity tables.
package rwp_test

import (
	"bytes"
	"io"
	"testing"

	"rwp"
	"rwp/internal/cache"
	"rwp/internal/exps"
	"rwp/internal/mem"
	"rwp/internal/policy"
	"rwp/internal/trace"
	"rwp/internal/workload"
)

// ---- One benchmark per paper table/figure ----

func BenchmarkE1LineClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exps.NewSuite(exps.Quick)
		_, res, err := s.E1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanWriteOnly*100, "writeonly_%")
	}
}

func BenchmarkE2Criticality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exps.NewSuite(exps.Quick)
		_, res, err := s.E2()
		if err != nil {
			b.Fatal(err)
		}
		p := res.Points[len(res.Points)-1]
		b.ReportMetric(p.LoadLoss*100, "loadloss_%")
		b.ReportMetric(p.StoreLoss*100, "storeloss_%")
	}
}

func BenchmarkE3SingleCoreSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exps.NewSuite(exps.Quick)
		_, res, err := s.E3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((res.GeoAll-1)*100, "all_speedup_%")
		b.ReportMetric((res.GeoSensitive-1)*100, "sens_speedup_%")
	}
}

func BenchmarkE4PolicyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exps.NewSuite(exps.Quick)
		_, res, err := s.E4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((res.Geo["rwp"]-1)*100, "rwp_speedup_%")
		b.ReportMetric((res.RWPvsRRP-1)*100, "rwp_vs_rrp_%")
	}
}

func BenchmarkE5Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exps.NewSuite(exps.Quick)
		_, res, err := s.E5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RWPOverRRP*100, "rwp_state_vs_rrp_%")
	}
}

func BenchmarkE6SizeSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exps.NewSuite(exps.Quick)
		_, res, err := s.E6()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric((p.Geo-1)*100, "speedup_"+report(p.LLCBytes)+"_%")
		}
	}
}

func report(size int) string {
	switch size {
	case 1 << 20:
		return "1MiB"
	case 2 << 20:
		return "2MiB"
	case 4 << 20:
		return "4MiB"
	case 8 << 20:
		return "8MiB"
	default:
		return "x"
	}
}

func BenchmarkE7Multicore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exps.NewSuite(exps.Quick)
		_, res, err := s.E7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((res.MeanThroughputVsLRU["rwp"]-1)*100, "rwp_throughput_%")
		b.ReportMetric((res.MeanThroughputVsLRU["ucp"]-1)*100, "ucp_throughput_%")
	}
}

func BenchmarkE8PartitionDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exps.NewSuite(exps.Quick)
		_, res, err := s.E8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Phase1Mean, "phase1_dirtyways")
		b.ReportMetric(res.Phase2Mean, "phase2_dirtyways")
	}
}

func BenchmarkE9WritebackTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exps.NewSuite(exps.Quick)
		_, res, err := s.E9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanRatio, "wb_ratio")
	}
}

func BenchmarkE10Associativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exps.NewSuite(exps.Quick)
		_, res, err := s.E10()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			if p.Ways == 16 {
				b.ReportMetric((p.Geo-1)*100, "speedup_16w_%")
			}
		}
	}
}

// ---- Micro-benchmarks of the simulator's hot paths ----

func benchCache(b *testing.B, policyName string) {
	p, err := policy.New(policyName)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cache.New(cache.Config{Name: "llc", SizeBytes: 1 << 20, Ways: 16, LineSize: 64}, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := mem.LineAddr(i * 31 % 40000)
		c.Access(line, mem.Addr(i%64)*4, cache.Class(i%3), 0)
	}
}

func BenchmarkCacheAccessLRU(b *testing.B)   { benchCache(b, "lru") }
func BenchmarkCacheAccessRWP(b *testing.B)   { benchCache(b, "rwp") }
func BenchmarkCacheAccessRRP(b *testing.B)   { benchCache(b, "rrp") }
func BenchmarkCacheAccessDRRIP(b *testing.B) { benchCache(b, "drrip") }

func BenchmarkWorkloadGeneration(b *testing.B) {
	prof, err := workload.Get("mcf")
	if err != nil {
		b.Fatal(err)
	}
	src := prof.NewSource()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceEncode(b *testing.B) {
	prof, _ := workload.Get("gcc")
	recs, err := trace.Collect(trace.NewLimit(prof.NewSource(), 100_000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw := trace.NewWriter(io.Discard)
		for _, a := range recs {
			if err := tw.Write(a); err != nil {
				b.Fatal(err)
			}
		}
		if err := tw.Flush(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(recs)))
	}
}

func BenchmarkTraceDecode(b *testing.B) {
	prof, _ := workload.Get("gcc")
	var buf bytes.Buffer
	if _, err := trace.WriteAll(&buf, trace.NewLimit(prof.NewSource(), 100_000)); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trace.NewReader(bytes.NewReader(raw))
		n := 0
		for {
			_, err := tr.Next()
			if err == trace.ErrEnd {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != 100_000 {
			b.Fatalf("decoded %d records", n)
		}
	}
}

func BenchmarkEndToEndSimulation(b *testing.B) {
	// Whole-stack throughput: workload → core model → 3-level hierarchy.
	cfg := rwp.Config{Policy: "rwp", Warmup: 10_000, Measure: 90_000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rwp.Run("gcc", cfg); err != nil {
			b.Fatal(err)
		}
	}
}
